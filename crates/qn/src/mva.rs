//! Mean Value Analysis of closed product-form queueing networks.
//!
//! This is the paper's baseline (Section 3.4): a closed network of
//! processor-sharing queues plus a delay (think) stage, parameterized only by
//! mean service demands, solved with the exact MVA recursion of Reiser &
//! Lavenberg. The paper shows this model is accurate for the shopping and
//! ordering mixes but errs by up to 36% under the browsing mix's bottleneck
//! switch — MVA provably cannot capture dependence between service times
//! (Balbo & Serazzi), which is exactly what the MAP model in
//! [`crate::mapqn`] adds.
//!
//! Also provided: the Schweitzer fixed-point approximation for large
//! populations and exact multiclass MVA for mixed workloads.

use serde::{Deserialize, Serialize};
// BTreeMap, not HashMap: the memo is keyed by population vectors and its
// iteration order must not leak randomness into any output (burstcap-lint's
// `unordered-iter` rule; CI diffs solver outputs bit-for-bit).
use std::collections::BTreeMap;

use crate::QnError;

/// Solution of a closed network for one population.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MvaSolution {
    /// System throughput (jobs/second leaving the think stage).
    pub throughput: f64,
    /// Mean response time across the queueing stations (excludes think).
    pub response_time: f64,
    /// Per-station utilization.
    pub utilization: Vec<f64>,
    /// Per-station mean queue length (jobs in service + waiting).
    pub queue_length: Vec<f64>,
}

/// Exact single-class MVA for a closed network of PS/FCFS queues and one
/// exponential think (delay) stage.
#[derive(Debug, Clone, PartialEq)]
pub struct ClosedMva {
    demands: Vec<f64>,
    think_time: f64,
}

impl ClosedMva {
    /// Create a model from per-station mean service demands (seconds per
    /// visit) and the mean think time.
    ///
    /// # Errors
    /// Rejects empty demand lists, non-positive demands, and negative think
    /// times.
    pub fn new(demands: Vec<f64>, think_time: f64) -> Result<Self, QnError> {
        if demands.is_empty() {
            return Err(QnError::InvalidParameter {
                name: "demands",
                reason: "need at least one station".into(),
            });
        }
        if demands.iter().any(|&d| d <= 0.0 || !d.is_finite()) {
            return Err(QnError::InvalidParameter {
                name: "demands",
                reason: "demands must be positive and finite".into(),
            });
        }
        if think_time < 0.0 || !think_time.is_finite() {
            return Err(QnError::InvalidParameter {
                name: "think_time",
                reason: format!("must be non-negative, got {think_time}"),
            });
        }
        Ok(ClosedMva {
            demands,
            think_time,
        })
    }

    /// Exact MVA recursion up to population `n`.
    ///
    /// # Errors
    /// Rejects a zero population.
    pub fn solve(&self, n: usize) -> Result<MvaSolution, QnError> {
        if n == 0 {
            return Err(QnError::InvalidParameter {
                name: "population",
                reason: "population must be at least 1".into(),
            });
        }
        let m = self.demands.len();
        let mut q = vec![0.0f64; m];
        let (mut x, mut r_total) = (0.0, 0.0);
        for k in 1..=n {
            let r: Vec<f64> = (0..m).map(|i| self.demands[i] * (1.0 + q[i])).collect();
            r_total = r.iter().sum();
            x = k as f64 / (self.think_time + r_total);
            for i in 0..m {
                q[i] = x * r[i];
            }
        }
        Ok(MvaSolution {
            throughput: x,
            response_time: r_total,
            // burstcap-lint: allow(silent-clamp) — closed-network utilization law bounds X·D below 1; min() trims roundoff only
            utilization: self.demands.iter().map(|d| (x * d).min(1.0)).collect(),
            queue_length: q,
        })
    }

    /// Schweitzer (proportional estimation) approximate MVA — a fixed point
    /// usable at populations where the exact recursion is too slow.
    ///
    /// # Errors
    /// Rejects a zero population; returns [`QnError::NoConvergence`] if the
    /// fixed point stalls (practically unreachable for valid inputs).
    pub fn solve_schweitzer(&self, n: usize) -> Result<MvaSolution, QnError> {
        if n == 0 {
            return Err(QnError::InvalidParameter {
                name: "population",
                reason: "population must be at least 1".into(),
            });
        }
        let m = self.demands.len();
        let nf = n as f64;
        let mut q = vec![nf / m as f64; m];
        for iter in 0..100_000 {
            let r: Vec<f64> = (0..m)
                .map(|i| self.demands[i] * (1.0 + q[i] * (nf - 1.0) / nf))
                .collect();
            let r_total: f64 = r.iter().sum();
            let x = nf / (self.think_time + r_total);
            let next: Vec<f64> = r.iter().map(|&ri| x * ri).collect();
            let diff: f64 = next.iter().zip(&q).map(|(a, b)| (a - b).abs()).sum();
            q = next;
            if diff < 1e-12 {
                return Ok(MvaSolution {
                    throughput: x,
                    response_time: r_total,
                    // burstcap-lint: allow(silent-clamp) — closed-network utilization law; min() trims roundoff only
                    utilization: self.demands.iter().map(|d| (x * d).min(1.0)).collect(),
                    queue_length: q,
                });
            }
            let _ = iter;
        }
        Err(QnError::NoConvergence {
            solver: "schweitzer",
            iterations: 100_000,
            residual: 0.0,
        })
    }

    /// Per-station demands.
    pub fn demands(&self) -> &[f64] {
        &self.demands
    }

    /// Mean think time.
    pub fn think_time(&self) -> f64 {
        self.think_time
    }
}

/// Exact multiclass MVA over population vectors.
///
/// `demands[c][i]` is the demand of class `c` at station `i`;
/// `think_times[c]` the per-class think time. Complexity is the product of
/// class populations — use for small mixes (the 14 TPC-W transaction types
/// are aggregated before modeling, as in the paper).
#[derive(Debug, Clone, PartialEq)]
pub struct MulticlassMva {
    demands: Vec<Vec<f64>>,
    think_times: Vec<f64>,
}

/// Multiclass MVA solution.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MulticlassSolution {
    /// Per-class throughput.
    pub throughput: Vec<f64>,
    /// Per-class total response time over the queueing stations.
    pub response_time: Vec<f64>,
    /// Per-station utilization (all classes).
    pub utilization: Vec<f64>,
}

impl MulticlassMva {
    /// Create a multiclass model.
    ///
    /// # Errors
    /// Rejects ragged demand matrices, empty models, non-positive demands,
    /// and negative think times.
    pub fn new(demands: Vec<Vec<f64>>, think_times: Vec<f64>) -> Result<Self, QnError> {
        if demands.is_empty() || demands[0].is_empty() {
            return Err(QnError::InvalidParameter {
                name: "demands",
                reason: "need at least one class and one station".into(),
            });
        }
        let m = demands[0].len();
        if demands.iter().any(|row| row.len() != m) {
            return Err(QnError::InvalidParameter {
                name: "demands",
                reason: "ragged demand matrix".into(),
            });
        }
        if demands.len() != think_times.len() {
            return Err(QnError::InvalidParameter {
                name: "think_times",
                reason: "one think time per class required".into(),
            });
        }
        if demands.iter().flatten().any(|&d| d < 0.0 || !d.is_finite()) {
            return Err(QnError::InvalidParameter {
                name: "demands",
                reason: "demands must be non-negative and finite".into(),
            });
        }
        Ok(MulticlassMva {
            demands,
            think_times,
        })
    }

    /// Exact recursion over all population vectors `<= population`.
    ///
    /// # Errors
    /// Rejects an all-zero population vector or one of the wrong length.
    pub fn solve(&self, population: &[usize]) -> Result<MulticlassSolution, QnError> {
        let c = self.demands.len();
        let m = self.demands[0].len();
        if population.len() != c {
            return Err(QnError::InvalidParameter {
                name: "population",
                reason: format!("expected {c} class populations, got {}", population.len()),
            });
        }
        if population.iter().all(|&n| n == 0) {
            return Err(QnError::InvalidParameter {
                name: "population",
                reason: "at least one class must have customers".into(),
            });
        }

        // Memoized queue lengths per population vector.
        let mut memo: BTreeMap<Vec<usize>, Vec<f64>> = BTreeMap::new();
        memo.insert(vec![0; c], vec![0.0; m]);

        let (q_final, x_final, r_final) = self.solve_recursive(population.to_vec(), &mut memo);

        let mut util = vec![0.0; m];
        for cls in 0..c {
            for i in 0..m {
                util[i] += x_final[cls] * self.demands[cls][i];
            }
        }
        let _ = q_final;
        Ok(MulticlassSolution {
            throughput: x_final,
            response_time: r_final,
            // burstcap-lint: allow(silent-clamp) — closed-network utilization law; min() trims roundoff only
            utilization: util.into_iter().map(|u| u.min(1.0)).collect(),
        })
    }

    #[allow(clippy::type_complexity)]
    fn solve_recursive(
        &self,
        pop: Vec<usize>,
        memo: &mut BTreeMap<Vec<usize>, Vec<f64>>,
    ) -> (Vec<f64>, Vec<f64>, Vec<f64>) {
        let c = self.demands.len();
        let m = self.demands[0].len();

        // Ensure the queue lengths for pop - e_c exist.
        let mut q_minus: Vec<Vec<f64>> = Vec::with_capacity(c);
        for cls in 0..c {
            if pop[cls] == 0 {
                q_minus.push(vec![0.0; m]);
                continue;
            }
            let mut sub = pop.clone();
            sub[cls] -= 1;
            if !memo.contains_key(&sub) {
                let (q_sub, _, _) = self.solve_recursive(sub.clone(), memo);
                memo.insert(sub.clone(), q_sub);
            }
            q_minus.push(memo[&sub].clone());
        }

        // Response times, throughputs, and queue lengths at `pop`.
        let mut x = vec![0.0; c];
        let mut r_tot = vec![0.0; c];
        let mut r = vec![vec![0.0; m]; c];
        for cls in 0..c {
            if pop[cls] == 0 {
                continue;
            }
            for i in 0..m {
                r[cls][i] = self.demands[cls][i] * (1.0 + q_minus[cls][i]);
            }
            r_tot[cls] = r[cls].iter().sum();
            x[cls] = pop[cls] as f64 / (self.think_times[cls] + r_tot[cls]);
        }
        let mut q = vec![0.0; m];
        for i in 0..m {
            for cls in 0..c {
                q[i] += x[cls] * r[cls][i];
            }
        }
        memo.insert(pop, q.clone());
        (q, x, r_tot)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_customer_has_no_queueing() {
        let mva = ClosedMva::new(vec![0.01, 0.02], 0.5).unwrap();
        let s = mva.solve(1).unwrap();
        let expected = 1.0 / (0.5 + 0.03);
        assert!((s.throughput - expected).abs() < 1e-12);
        assert!((s.response_time - 0.03).abs() < 1e-12);
    }

    #[test]
    fn throughput_saturates_at_bottleneck() {
        let mva = ClosedMva::new(vec![0.01, 0.004], 0.5).unwrap();
        let s = mva.solve(500).unwrap();
        assert!((s.throughput - 100.0).abs() < 0.5, "X = {}", s.throughput);
        assert!(s.utilization[0] > 0.99);
    }

    #[test]
    fn throughput_monotone_in_population() {
        let mva = ClosedMva::new(vec![0.008, 0.006], 0.5).unwrap();
        let mut last = 0.0;
        for n in [1, 5, 20, 80, 200] {
            let x = mva.solve(n).unwrap().throughput;
            assert!(x >= last - 1e-12, "X({n}) = {x} dipped below {last}");
            last = x;
        }
    }

    #[test]
    fn matches_mm1_closed_formula_two_customers() {
        // N=2, single queue, think Z: standard closed-form check.
        // R(1) = D; X(1) = 1/(Z+D); Q(1) = X D.
        // R(2) = D (1 + Q(1)); X(2) = 2/(Z + R(2)).
        let (d, z) = (0.1, 0.4);
        let mva = ClosedMva::new(vec![d], z).unwrap();
        let s1 = mva.solve(1).unwrap();
        let q1 = s1.throughput * d;
        let r2 = d * (1.0 + q1);
        let x2 = 2.0 / (z + r2);
        let s2 = mva.solve(2).unwrap();
        assert!((s2.throughput - x2).abs() < 1e-12);
    }

    #[test]
    fn utilization_law_holds() {
        let mva = ClosedMva::new(vec![0.02, 0.01], 0.3).unwrap();
        let s = mva.solve(10).unwrap();
        assert!((s.utilization[0] - s.throughput * 0.02).abs() < 1e-9);
        assert!((s.utilization[1] - s.throughput * 0.01).abs() < 1e-9);
    }

    #[test]
    fn littles_law_on_queues() {
        let mva = ClosedMva::new(vec![0.02, 0.01], 0.3).unwrap();
        let s = mva.solve(25).unwrap();
        let jobs_in_queues: f64 = s.queue_length.iter().sum();
        assert!((jobs_in_queues - s.throughput * s.response_time).abs() < 1e-9);
        // Total population = queues + thinking.
        let thinking = s.throughput * 0.3;
        assert!((jobs_in_queues + thinking - 25.0).abs() < 1e-9);
    }

    #[test]
    fn schweitzer_close_to_exact() {
        let mva = ClosedMva::new(vec![0.01, 0.007], 0.5).unwrap();
        for n in [5, 50, 150] {
            let exact = mva.solve(n).unwrap().throughput;
            let approx = mva.solve_schweitzer(n).unwrap().throughput;
            assert!(
                (exact - approx).abs() / exact < 0.05,
                "N={n}: exact {exact} vs schweitzer {approx}"
            );
        }
    }

    #[test]
    fn validation_errors() {
        assert!(ClosedMva::new(vec![], 0.5).is_err());
        assert!(ClosedMva::new(vec![0.0], 0.5).is_err());
        assert!(ClosedMva::new(vec![0.1], -1.0).is_err());
        assert!(ClosedMva::new(vec![0.1], 0.5).unwrap().solve(0).is_err());
    }

    #[test]
    fn multiclass_reduces_to_single_class() {
        let mc = MulticlassMva::new(vec![vec![0.01, 0.02]], vec![0.5]).unwrap();
        let sc = ClosedMva::new(vec![0.01, 0.02], 0.5).unwrap();
        let ms = mc.solve(&[30]).unwrap();
        let ss = sc.solve(30).unwrap();
        assert!((ms.throughput[0] - ss.throughput).abs() < 1e-9);
        assert!((ms.response_time[0] - ss.response_time).abs() < 1e-9);
    }

    #[test]
    fn multiclass_two_classes_conserve_population() {
        let mc = MulticlassMva::new(vec![vec![0.01, 0.002], vec![0.002, 0.015]], vec![0.5, 0.5])
            .unwrap();
        let s = mc.solve(&[10, 10]).unwrap();
        // Per-class Little: N_c = X_c (Z_c + R_c).
        for c in 0..2 {
            let n_c = s.throughput[c] * (0.5 + s.response_time[c]);
            assert!((n_c - 10.0).abs() < 1e-6, "class {c}: {n_c}");
        }
    }

    #[test]
    fn multiclass_validation() {
        assert!(MulticlassMva::new(vec![], vec![]).is_err());
        assert!(MulticlassMva::new(vec![vec![0.1], vec![0.1, 0.2]], vec![0.5, 0.5]).is_err());
        assert!(MulticlassMva::new(vec![vec![0.1]], vec![0.5, 0.6]).is_err());
        let mc = MulticlassMva::new(vec![vec![0.1]], vec![0.5]).unwrap();
        assert!(mc.solve(&[0]).is_err());
        assert!(mc.solve(&[1, 2]).is_err());
    }
}
