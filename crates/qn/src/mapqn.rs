//! The paper's analytic model, generalized: a closed network of `M` MAP(2)
//! queues plus a think stage.
//!
//! Figure 9 of the paper models the multi-tier system as a closed network of
//! two queues (front server, database server) and a delay (think) stage.
//! Section 4 replaces the exponential servers with fitted **MAP(2) service
//! processes** and solves the model exactly "by building the underlying
//! Markov chain and solving the system of linear equations".
//!
//! [`MapNetwork`] builds that CTMC for an arbitrary **tandem of `M`
//! stations** (think → station 1 → … → station M → think); the paper's
//! two-tier model is the `M = 2` instance and keeps its dedicated
//! constructor [`MapNetwork::new`]. A state is the pair of vectors
//! `(n_1..n_M, phase_1..phase_M)` with `n_1 + … + n_M <= N`; the remaining
//! customers are thinking. Each server's MAP evolves only while its queue is
//! non-empty (frozen-when-idle semantics, matched bit-for-bit by the
//! discrete-event simulator in `burstcap-sim`).
//!
//! # State space
//!
//! Occupancy vectors are ranked lexicographically with the combinatorial
//! number system (`C(b + d, d)` tables, O(M) per lookup), phases innermost;
//! for `M = 2` this reproduces the historical `(n_front, n_db, phase_f,
//! phase_d)` enumeration exactly, so CSR assembly is bit-identical to the
//! two-tier original. The chain has `C(N + M, M) * 2^M` states.
//!
//! # Solver
//!
//! Fitted bursty MAPs have phase-persistence `gamma` extremely close to 1,
//! which makes the CTMC *nearly completely decomposable* — the regime where
//! sweep methods (Gauss-Seidel, power iteration) stall. The network, however,
//! is **block tridiagonal** in the level `l = n_1 + … + n_M`: think
//! completions move up one level, last-station completions move down one,
//! and every other transition (hidden phase changes, station `i → i + 1`
//! hand-offs) stays within a level. [`MapNetwork::solve`] therefore uses
//! exact block Gaussian elimination over levels (linear level reduction, the
//! finite-QBD direct method), which is immune to stiffness; the two-station
//! specialization is preserved verbatim as
//! [`MapNetwork::solve_two_station_reference`] and serves as the `M = 2`
//! oracle for the generic code.
//!
//! For large populations with moderate stiffness the **sparse engine** is
//! the faster route: [`MapNetwork::outgoing_csr`] assembles the generator
//! straight into compressed sparse row form (no triplet list — each state
//! has at most `2 + 3M` outgoing transitions), and
//! [`MapNetwork::solve_sparse`] / [`MapNetwork::solve_iterative`] run the
//! CSR-backed Gauss-Seidel or uniformized power iteration of
//! [`crate::ctmc`] on it. The dense LU oracle remains available through
//! [`MapNetwork::solve_iterative`] for cross-validation on small models.

use serde::{Deserialize, Serialize};

use burstcap_map::Map2;
use burstcap_obs::Trace;

use crate::csr::CsrMatrix;
use crate::ctmc::{Ctmc, SparseMethod, SteadyStateMethod};
use crate::matfree::{MatFreeMethod, MatrixFreeGenerator};
use crate::QnError;

/// Default cap on CTMC size (states).
pub const DEFAULT_STATE_LIMIT: usize = 2_000_000;

/// Default state-count crossover for [`MapNetwork::solve_auto`]: below this
/// the direct level-reduction is faster, above it the sparse CSR engine wins
/// (measured on MAP(2)×MAP(2) networks; the exact crossover varies a little
/// with stiffness and station count).
pub const AUTO_SPARSE_THRESHOLD: usize = 10_000;

/// Default state-count crossover between the CSR sparse engine and the
/// matrix-free engine in [`MapNetwork::solve_auto`]: above this the
/// `O(nnz)` CSR arrays dominate memory (a `C(N+M,M)·2^M`-state tandem has
/// `≈ (2 + 3M)` transitions per state) and the matrix-free sweep — which
/// regenerates transitions from the per-station `Map2` factors on the fly,
/// `O(states·M)` memory total — takes over. Measured on the bench frontier
/// grid (`M = 3..4`, populations past the 170k-state point); see
/// `BENCH_baseline.json`.
pub const AUTO_MATFREE_THRESHOLD: usize = 120_000;

/// Which steady-state engine produced a [`MapQnSolution`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SolveEngine {
    /// Block level-reduction (finite-QBD direct method).
    Direct,
    /// Dense LU on the full generator (small-model oracle).
    DenseLu,
    /// CSR-backed iterative sweep (Gauss-Seidel or uniformized power).
    SparseCsr,
    /// Matrix-free parallel sweep (no generator materialization).
    MatrixFree,
}

impl SolveEngine {
    /// Stable lowercase label used in trace events and JSON artifacts.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            SolveEngine::Direct => "direct",
            SolveEngine::DenseLu => "dense_lu",
            SolveEngine::SparseCsr => "sparse_csr",
            SolveEngine::MatrixFree => "matrix_free",
        }
    }
}

/// Iterations attributed to each engine tier over the course of one solve,
/// **including stalled attempts**: when an iterative engine exhausts its
/// budget and a fallback produces the answer, the stalled sweeps are real
/// work that `iterations` (which describes the answering engine only) no
/// longer shows. The per-tier split keeps that cost visible.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct EngineSweeps {
    /// Direct level-reduction (non-iterative: always `0` sweeps — the entry
    /// records that the tier ran via [`SolveDiagnostics::engine`]).
    pub direct: usize,
    /// Dense LU oracle (non-iterative: always `0` sweeps).
    pub dense_lu: usize,
    /// CSR Gauss-Seidel / uniformized power sweeps.
    pub sparse_csr: usize,
    /// Matrix-free Jacobi / power sweeps.
    pub matrix_free: usize,
}

impl EngineSweeps {
    /// Attribute `sweeps` iterations to `engine` (additive: a retry after a
    /// stall accumulates on top of the stalled attempt).
    pub(crate) fn tally(&mut self, engine: SolveEngine, sweeps: usize) {
        match engine {
            SolveEngine::Direct => self.direct += sweeps,
            SolveEngine::DenseLu => self.dense_lu += sweeps,
            SolveEngine::SparseCsr => self.sparse_csr += sweeps,
            SolveEngine::MatrixFree => self.matrix_free += sweeps,
        }
    }

    fn of(engine: SolveEngine, sweeps: usize) -> Self {
        let mut s = EngineSweeps::default();
        s.tally(engine, sweeps);
        s
    }
}

/// How a solve actually ran: which engine produced the answer, how many
/// sweeps it took, how converged it finished, and whether an iterative
/// attempt stalled first.
///
/// Every [`MapQnSolution`] carries one of these so callers such as
/// `OnlinePlanner` and the bench can distinguish a warm solve that converged
/// from one that silently fell back to the (cold, slower) direct engine —
/// previously both looked identical and timings were misattributed.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SolveDiagnostics {
    /// Engine that produced the returned metrics.
    pub engine: SolveEngine,
    /// Iterations (sweeps) that engine performed; `0` for direct methods.
    pub iterations: usize,
    /// `true` when an iterative attempt stalled and a fallback engine
    /// produced the answer instead.
    pub fell_back: bool,
    /// Scale-free residual at the accepting check of the answering engine;
    /// `0.0` for direct methods (exact to machine precision).
    pub final_residual: f64,
    /// Sweeps attributed per engine tier, stalled attempts included.
    pub sweeps_per_engine: EngineSweeps,
    /// Id of the `qn.solve` / `qn.solve_auto` span this solve ran under in
    /// a recorded trace (`burstcap_obs`), linking the solution to its span
    /// tree; `0` when the solve was untraced.
    pub trace_id: u64,
}

impl SolveDiagnostics {
    /// Diagnostics of a first-try direct solve (no iterations, no fallback).
    pub(crate) fn direct() -> Self {
        Self::of_engine(SolveEngine::Direct, 0, 0.0)
    }

    /// Diagnostics of a single-engine run that did not fall back.
    pub(crate) fn of_engine(engine: SolveEngine, iterations: usize, final_residual: f64) -> Self {
        SolveDiagnostics {
            engine,
            iterations,
            fell_back: false,
            final_residual,
            sweeps_per_engine: EngineSweeps::of(engine, iterations),
            trace_id: 0,
        }
    }
}

/// Closed tandem network: think (exp) → station 1 (MAP2) → … → station M
/// (MAP2) → think.
#[derive(Debug, Clone, PartialEq)]
pub struct MapNetwork {
    population: usize,
    think_time: f64,
    stations: Vec<Map2>,
    state_limit: usize,
}

/// Exact steady-state metrics of a [`MapNetwork`].
///
/// Per-station metrics live in the `utilization` / `mean_jobs` vectors
/// (station order = tandem order). The scalar `*_front` / `*_db` fields
/// mirror the **first** and **last** station for continuity with the
/// paper's two-tier model; for `M = 2` they are exactly the historical
/// fields.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MapQnSolution {
    /// System throughput (last-station completions per second).
    pub throughput: f64,
    /// Per-station utilization (probability the station is busy), in tandem
    /// order.
    pub utilization: Vec<f64>,
    /// Per-station mean number of resident requests, in tandem order.
    pub mean_jobs: Vec<f64>,
    /// First-station utilization (`utilization[0]`).
    pub utilization_front: f64,
    /// Last-station utilization (`utilization[M - 1]`).
    pub utilization_db: f64,
    /// Mean number of requests at the first station (`mean_jobs[0]`).
    pub mean_jobs_front: f64,
    /// Mean number of requests at the last station (`mean_jobs[M - 1]`).
    pub mean_jobs_db: f64,
    /// Mean response time of one think-to-think pass (Little's law).
    pub response_time: f64,
    /// Number of CTMC states solved.
    pub states: usize,
    /// Which engine produced this solution and how much work it did.
    pub diagnostics: SolveDiagnostics,
}

impl MapQnSolution {
    fn with_diagnostics(mut self, diagnostics: SolveDiagnostics) -> Self {
        self.diagnostics = diagnostics;
        self
    }
}

/// Combinatorial ranking of occupancy vectors (the combinatorial number
/// system over `cum[d][b] = C(b + d, d)`, the count of `d`-component
/// occupancy vectors with total at most `b`). Shared with the matrix-free
/// engine in [`crate::matfree`], which ranks and unranks states on the fly
/// instead of materializing the generator.
#[derive(Debug, Clone)]
pub(crate) struct StateIndexer {
    n: usize,
    pub(crate) phases: usize,
    cum: Vec<Vec<usize>>,
}

impl StateIndexer {
    /// Checked construction: every table entry is built with `checked_add`,
    /// and the final `C(n + m, m) * 2^m` state count must be representable.
    /// An overflow means the state space does not fit in a `usize` — far
    /// beyond any configured cap — so it is reported as the typed
    /// [`QnError::StateSpaceTooLarge`] (with a saturated `states` field)
    /// rather than left to a separate limit check that a regression could
    /// silently bypass, corrupting every rank the indexer hands out.
    fn try_new(n: usize, m: usize, limit: usize) -> Result<Self, QnError> {
        let overflow = || QnError::StateSpaceTooLarge {
            states: usize::MAX,
            limit,
        };
        // cum[0][b] = 1; C(b + d, d) = C(b - 1 + d, d) + C(b + d - 1, d - 1).
        let mut cum = vec![vec![1usize; n + 1]; m + 1];
        for d in 1..=m {
            for b in 0..=n {
                let left = if b == 0 { 0 } else { cum[d][b - 1] };
                cum[d][b] = left.checked_add(cum[d - 1][b]).ok_or_else(overflow)?;
            }
        }
        // burstcap-lint: allow(lossy-state-cast) — m is a station count (tiny); checked_shl rejects any shift >= word size regardless
        let phases = 1usize.checked_shl(m as u32).ok_or_else(overflow)?;
        cum[m][n].checked_mul(phases).ok_or_else(overflow)?;
        Ok(StateIndexer { n, phases, cum })
    }

    /// Total number of CTMC states the indexer ranks: occupancy count times
    /// the phase factor (overflow-checked at construction).
    pub(crate) fn state_count(&self) -> usize {
        // burstcap-lint: allow(lossy-state-cast) — trailing_zeros() <= 64 always widens losslessly into usize
        let m = self.phases.trailing_zeros() as usize;
        self.cum[m][self.n] * self.phases
    }

    /// Inverse of [`StateIndexer::occ_rank`]: the occupancy vector at the
    /// given lexicographic rank. `O(N·M)` — used once per worker to seed a
    /// row range, not on the per-state hot path.
    pub(crate) fn unrank(&self, mut rank: usize) -> Vec<usize> {
        // burstcap-lint: allow(lossy-state-cast) — trailing_zeros() <= 64 always widens losslessly into usize
        let m = self.phases.trailing_zeros() as usize;
        let mut occ = vec![0usize; m];
        let mut b = self.n;
        for (i, slot) in occ.iter_mut().enumerate() {
            let d = m - i;
            // Largest component value whose predecessor count fits in rank.
            let mut o = 0usize;
            // burstcap-lint: allow(lossy-state-cast) — o < b <= n bounds o + 1; the cum table itself is overflow-checked at construction
            while o < b && self.cum[d][b] - self.cum[d][b - (o + 1)] <= rank {
                o += 1;
            }
            rank -= self.cum[d][b] - self.cum[d][b - o];
            *slot = o;
            b -= o;
        }
        occ
    }

    /// Lexicographic rank of `occ` among all occupancy vectors with total at
    /// most `n`.
    pub(crate) fn occ_rank(&self, occ: &[usize]) -> usize {
        let m = occ.len();
        let mut r = 0;
        let mut b = self.n;
        for (i, &o) in occ.iter().enumerate() {
            let d = m - i;
            r += self.cum[d][b] - self.cum[d][b - o];
            b -= o;
        }
        r
    }

    /// Lexicographic rank of `comp` among the compositions of its own total
    /// (the within-level local index, before the phase factor).
    pub(crate) fn comp_rank(&self, comp: &[usize]) -> usize {
        let m = comp.len();
        let mut r = 0;
        let mut s: usize = comp.iter().sum();
        for i in 0..m.saturating_sub(1) {
            let d = m - i;
            // Compositions with a smaller component here: for each k <
            // comp[i], the remaining d-1 components sum to s - k freely.
            r += self.cum[d - 1][s] - self.cum[d - 1][s - comp[i]];
            s -= comp[i];
        }
        r
    }

    /// Flat CTMC index of the state `(occ, phase)`. The hot paths keep the
    /// occupancy base and phase offset separate; this composed form serves
    /// the indexing tests.
    #[cfg(test)]
    fn flat_index(&self, occ: &[usize], phase: usize) -> usize {
        self.occ_rank(occ) * self.phases + phase
    }
}

/// All compositions of `total` into `m` parts, lexicographic order (the
/// within-level enumeration).
fn compositions(total: usize, m: usize) -> Vec<Vec<usize>> {
    let mut out = Vec::new();
    let mut scratch = vec![0usize; m];
    fill_compositions(total, 0, &mut scratch, &mut out);
    out
}

fn fill_compositions(rest: usize, dim: usize, scratch: &mut Vec<usize>, out: &mut Vec<Vec<usize>>) {
    if dim + 1 == scratch.len() {
        scratch[dim] = rest;
        out.push(scratch.clone());
        return;
    }
    for k in 0..=rest {
        scratch[dim] = k;
        fill_compositions(rest - k, dim + 1, scratch, out);
    }
}

/// Phase index helpers: station `i`'s phase bit sits at `m - 1 - i` (station
/// 0 is the most significant bit, matching the historical `p_f * 2 + p_d`
/// layout for `M = 2`).
#[inline]
pub(crate) fn phase_of(q: usize, i: usize, m: usize) -> usize {
    (q >> (m - 1 - i)) & 1
}

#[inline]
pub(crate) fn with_phase(q: usize, i: usize, j: usize, m: usize) -> usize {
    (q & !(1 << (m - 1 - i))) | (j << (m - 1 - i))
}

impl MapNetwork {
    /// Configure the paper's two-tier network (think → front → db → think):
    /// the `M = 2` tandem.
    ///
    /// # Errors
    /// Rejects a zero population and non-positive think times.
    pub fn new(population: usize, think_time: f64, front: Map2, db: Map2) -> Result<Self, QnError> {
        Self::tandem(population, think_time, vec![front, db])
    }

    /// Configure a tandem of `M` MAP(2) stations: think completions enter
    /// station 1, station `i` completions move to station `i + 1`, and the
    /// last station's completions return to the think stage.
    ///
    /// # Errors
    /// Rejects a zero population, non-positive think times, and an empty
    /// station list.
    ///
    /// # Example
    /// ```
    /// use burstcap_map::Map2;
    /// use burstcap_qn::mapqn::MapNetwork;
    ///
    /// // Three-tier (web + app + db) network with exponential services.
    /// let stations = vec![
    ///     Map2::poisson(1.0 / 0.004)?,
    ///     Map2::poisson(1.0 / 0.010)?,
    ///     Map2::poisson(1.0 / 0.006)?,
    /// ];
    /// let sol = MapNetwork::tandem(1, 0.5, stations)?.solve()?;
    /// let expect = 1.0 / (0.5 + 0.004 + 0.010 + 0.006);
    /// assert!((sol.throughput - expect).abs() / expect < 1e-9);
    /// assert_eq!(sol.utilization.len(), 3);
    /// # Ok::<(), Box<dyn std::error::Error>>(())
    /// ```
    pub fn tandem(
        population: usize,
        think_time: f64,
        stations: Vec<Map2>,
    ) -> Result<Self, QnError> {
        if population == 0 {
            return Err(QnError::InvalidParameter {
                name: "population",
                reason: "population must be at least 1".into(),
            });
        }
        if think_time <= 0.0 || !think_time.is_finite() {
            return Err(QnError::InvalidParameter {
                name: "think_time",
                reason: format!("must be positive and finite, got {think_time}"),
            });
        }
        if stations.is_empty() {
            return Err(QnError::InvalidParameter {
                name: "stations",
                reason: "need at least one MAP station".into(),
            });
        }
        Ok(MapNetwork {
            population,
            think_time,
            stations,
            state_limit: DEFAULT_STATE_LIMIT,
        })
    }

    /// Override the state-space cap.
    pub fn state_limit(mut self, limit: usize) -> Self {
        self.state_limit = limit;
        self
    }

    /// Number of CTMC states for this population and station count:
    /// `C(N + M, M) * 2^M` (for `M = 2` this is `(N+1)(N+2)/2 * 4`).
    pub fn state_count(&self) -> usize {
        let m = self.stations.len();
        let n = self.population;
        // C(n + m, m) built incrementally: after step i the product is the
        // integer C(n + i, i). Saturating so absurd inputs trip the limit
        // check instead of wrapping.
        let mut c: usize = 1;
        for i in 1..=m {
            c = c.saturating_mul(n + i) / i;
        }
        c.saturating_mul(1usize << m)
    }

    /// The configured population.
    pub fn population(&self) -> usize {
        self.population
    }

    /// The configured mean think time.
    pub fn think_time(&self) -> f64 {
        self.think_time
    }

    /// The configured stations, in tandem order.
    pub fn stations(&self) -> &[Map2] {
        &self.stations
    }

    /// Station count `M`.
    pub fn station_count(&self) -> usize {
        self.stations.len()
    }

    fn check_state_limit(&self) -> Result<usize, QnError> {
        let states = self.state_count();
        if states > self.state_limit {
            return Err(QnError::StateSpaceTooLarge {
                states,
                limit: self.state_limit,
            });
        }
        Ok(states)
    }

    /// Build the (overflow-checked) combinatorial indexer for this network.
    fn indexer(&self) -> Result<StateIndexer, QnError> {
        StateIndexer::try_new(self.population, self.stations.len(), self.state_limit)
    }

    // ------------------------------------------------------------------
    // Level-structured representation.
    //
    // Level l holds the states with n_1 + … + n_M = l. The local index of
    // (comp, phases) is comp_rank * 2^M + phase_index, independent of the
    // level; the "up" map (think completion, which increments n_1) sends a
    // local index to the rank of the incremented composition one level up,
    // phases unchanged.
    // ------------------------------------------------------------------

    /// Within-level block `A0_l` over the given level compositions,
    /// including the full exit rates on the diagonal (up, down, and
    /// within-level transitions all drain it).
    fn a0(&self, level: usize, comps: &[Vec<usize>], idx: &StateIndexer) -> Vec<f64> {
        let m = self.stations.len();
        let phases = idx.phases;
        let size = comps.len() * phases;
        let mut a = vec![0.0; size * size];
        let up_rate = if level < self.population {
            (self.population - level) as f64 / self.think_time
        } else {
            0.0
        };
        let mut scratch = vec![0usize; m];
        // Phase-independent hand-off destinations (job at station i moves
        // to i + 1 within the level), hoisted out of the phase loop.
        let mut within_dst = vec![usize::MAX; m];
        for (ci, comp) in comps.iter().enumerate() {
            for i in 0..m {
                within_dst[i] = if comp[i] > 0 && i + 1 < m {
                    scratch.copy_from_slice(comp);
                    scratch[i] -= 1;
                    scratch[i + 1] += 1;
                    idx.comp_rank(&scratch)
                } else {
                    usize::MAX
                };
            }
            for q in 0..phases {
                let s = ci * phases + q;
                let mut exit = up_rate;
                for i in 0..m {
                    if comp[i] == 0 {
                        continue;
                    }
                    let p = phase_of(q, i, m);
                    let d0 = self.stations[i].d0();
                    exit += -d0[p][p];
                    // Hidden phase change at station i.
                    let hidden = d0[p][1 - p];
                    if hidden > 0.0 {
                        a[s * size + (ci * phases + with_phase(q, i, 1 - p, m))] += hidden;
                    }
                    // Completions at stations before the last stay within
                    // the level: the job moves to station i + 1.
                    if i + 1 < m {
                        let cdst = within_dst[i];
                        for (j, &rate) in self.stations[i].d1()[p].iter().enumerate() {
                            if rate > 0.0 {
                                a[s * size + (cdst * phases + with_phase(q, i, j, m))] += rate;
                            }
                        }
                    }
                    // Last-station completions leave the level (see adown).
                }
                a[s * size + s] -= exit;
            }
        }
        a
    }

    /// Down-transitions from `level` to `level - 1` as sparse triples
    /// `(local_from, local_to, rate)`: last-station completions.
    fn adown(
        &self,
        level: usize,
        comps: &[Vec<usize>],
        idx: &StateIndexer,
    ) -> Vec<(usize, usize, f64)> {
        debug_assert!(level >= 1);
        let m = self.stations.len();
        let phases = idx.phases;
        let last = m - 1;
        let d1 = self.stations[last].d1();
        let mut tr = Vec::new();
        for (ci, comp) in comps.iter().enumerate() {
            if comp[last] == 0 {
                continue;
            }
            let mut dst = comp.clone();
            dst[last] -= 1;
            let cdst = idx.comp_rank(&dst);
            for q in 0..phases {
                let p = phase_of(q, last, m);
                let s = ci * phases + q;
                for (j, &rate) in d1[p].iter().enumerate() {
                    if rate > 0.0 {
                        tr.push((s, cdst * phases + with_phase(q, last, j, m), rate));
                    }
                }
            }
        }
        tr
    }

    /// Solve the network exactly by block Gaussian elimination over levels
    /// (the finite-QBD direct method — immune to stiffness; `O(N^4)` time
    /// for two stations, with level blocks growing as `C(l + M - 1, M - 1)`
    /// for larger tandems).
    ///
    /// # Errors
    /// Refuses state spaces beyond the configured limit and propagates
    /// numerical failures (singular level blocks, impossible for valid
    /// MAPs).
    ///
    /// # Example
    /// ```
    /// use burstcap_map::Map2;
    /// use burstcap_qn::mapqn::MapNetwork;
    ///
    /// // N = 1 has the closed form X = 1 / (Z + S_front + S_db).
    /// let net = MapNetwork::new(1, 0.5, Map2::poisson(100.0)?, Map2::poisson(50.0)?)?;
    /// let sol = net.solve()?;
    /// let expect = 1.0 / (0.5 + 0.01 + 0.02);
    /// assert!((sol.throughput - expect).abs() / expect < 1e-9);
    /// # Ok::<(), Box<dyn std::error::Error>>(())
    /// ```
    pub fn solve(&self) -> Result<MapQnSolution, QnError> {
        Ok(self.solve_with_initial(None)?.0)
    }

    /// The direct level-reduction solve through the **same seam** as
    /// [`MapNetwork::solve_sparse_with_initial`]: accepts an (optional)
    /// stationary-vector guess and returns both the metrics and the flat
    /// stationary vector.
    ///
    /// The direct method is non-iterative, so the guess cannot speed it up —
    /// it is validated (length must match [`MapNetwork::state_count`]) and
    /// otherwise unused. What the seam buys is the *output*: every
    /// stall-fallback from an iterative engine used to land here, solve
    /// cold, and **discard** the stationary vector, so the caller's warm
    ///-start chain broke exactly when the chain got stiff. Returning the
    /// flat `pi` keeps warm-starting alive across fallbacks.
    ///
    /// # Errors
    /// Rejects a wrong-length guess; otherwise as [`MapNetwork::solve`].
    ///
    /// # Example
    /// ```
    /// use burstcap_map::Map2;
    /// use burstcap_qn::mapqn::MapNetwork;
    ///
    /// let net = MapNetwork::new(8, 0.5, Map2::poisson(100.0)?, Map2::poisson(50.0)?)?;
    /// let (sol, pi) = net.solve_with_initial(None)?;
    /// assert_eq!(pi.len(), net.state_count());
    /// assert!((pi.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    /// // The vector seeds the next (possibly iterative) solve.
    /// let (warm, _) = net.solve_sparse_with_initial(Some(pi))?;
    /// assert!((warm.throughput - sol.throughput).abs() / sol.throughput < 1e-8);
    /// # Ok::<(), Box<dyn std::error::Error>>(())
    /// ```
    pub fn solve_with_initial(
        &self,
        guess: Option<Vec<f64>>,
    ) -> Result<(MapQnSolution, Vec<f64>), QnError> {
        self.check_state_limit()?;
        if let Some(g) = &guess {
            if g.len() != self.state_count() {
                return Err(QnError::InvalidParameter {
                    name: "guess",
                    reason: format!(
                        "initial vector has {} entries, chain has {} states",
                        g.len(),
                        self.state_count()
                    ),
                });
            }
        }
        let n = self.population;
        let z = self.think_time;
        let m = self.stations.len();
        let idx = self.indexer()?;
        let phases = idx.phases;
        let comps: Vec<Vec<Vec<usize>>> = (0..=n).map(|l| compositions(l, m)).collect();

        // Up map: composition rank one level up after a think completion
        // (station 1 gains a job, phases unchanged).
        let up_comp: Vec<Vec<usize>> = (0..n)
            .map(|l| {
                comps[l]
                    .iter()
                    .map(|c| {
                        let mut c2 = c.clone();
                        c2[0] += 1;
                        idx.comp_rank(&c2)
                    })
                    .collect()
            })
            .collect();

        // Backward pass: S_N = A0_N; S_l = A0_l + U_l * Adown_{l+1} where
        // U_l = nu_l * inv(-S_{l+1})[up rows].
        let mut s = self.a0(n, &comps[n], &idx);
        let mut u_blocks: Vec<Vec<f64>> = Vec::with_capacity(n);
        for level in (0..n).rev() {
            let m_next = comps[level + 1].len() * phases;
            let m_l = comps[level].len() * phases;
            // inv(-S_{l+1})
            let mut neg = s;
            for x in neg.iter_mut() {
                *x = -*x;
            }
            let inv = invert_flat(&mut neg, m_next).ok_or(QnError::InvalidParameter {
                name: "network",
                reason: format!("singular level block at level {}", level + 1),
            })?;
            let nu = (n - level) as f64 / z;
            let mut u = vec![0.0; m_l * m_next];
            for r in 0..m_l {
                let src_row = up_comp[level][r / phases] * phases + r % phases;
                let dst = r * m_next;
                let src = src_row * m_next;
                u[dst..dst + m_next].copy_from_slice(&inv[src..src + m_next]);
                for x in &mut u[dst..dst + m_next] {
                    *x *= nu;
                }
            }
            // S_l = A0_l + U * Adown_{l+1}.
            let mut s_l = self.a0(level, &comps[level], &idx);
            for &(row_next, col_l, rate) in &self.adown(level + 1, &comps[level + 1], &idx) {
                for r in 0..m_l {
                    s_l[r * m_l + col_l] += u[r * m_next + row_next] * rate;
                }
            }
            u_blocks.push(u);
            s = s_l;
        }
        u_blocks.reverse();

        // pi_0 S_0 = 0 with normalization: 2^M x 2^M nullspace solve.
        let pi0 = left_null_vector(&s, phases).ok_or(QnError::InvalidParameter {
            name: "network",
            reason: "level-0 block has no stationary vector".into(),
        })?;

        let levels = forward_pass(pi0, &u_blocks, |l| comps[l].len() * phases)?;
        let solution = self.metrics_from_levels(&levels, &comps);
        // Flatten the level blocks back into combinatorial flat-index order
        // so the vector can warm-start a subsequent iterative solve.
        let mut pi = Vec::with_capacity(self.state_count());
        let mut occ = vec![0usize; m];
        loop {
            let total: usize = occ.iter().sum();
            let local_base = idx.comp_rank(&occ) * phases;
            pi.extend_from_slice(&levels[total][local_base..local_base + phases]);
            if !next_occupancy(&mut occ, total, n) {
                break;
            }
        }
        Ok((solution, pi))
    }

    /// The preserved two-station direct solver — the exact code path the
    /// two-tier model shipped with, kept as the `M = 2` **oracle** for the
    /// generic level reduction (property tests require agreement within
    /// `1e-10`).
    ///
    /// # Errors
    /// Rejects networks with a station count other than 2; otherwise as
    /// [`MapNetwork::solve`].
    pub fn solve_two_station_reference(&self) -> Result<MapQnSolution, QnError> {
        if self.stations.len() != 2 {
            return Err(QnError::InvalidParameter {
                name: "stations",
                reason: format!(
                    "two-station reference solver requires M = 2, got {}",
                    self.stations.len()
                ),
            });
        }
        self.check_state_limit()?;
        let n = self.population;
        let z = self.think_time;
        let level_size = |level: usize| 4 * (level + 1);

        // Backward pass, specialized: the up map is a fixed +4 shift of the
        // local index.
        let mut s = self.a0_two_station(n);
        let mut u_blocks: Vec<Vec<f64>> = Vec::with_capacity(n);
        for level in (0..n).rev() {
            let m_next = level_size(level + 1);
            let m_l = level_size(level);
            let mut neg = s;
            for x in neg.iter_mut() {
                *x = -*x;
            }
            let inv = invert_flat(&mut neg, m_next).ok_or(QnError::InvalidParameter {
                name: "network",
                reason: format!("singular level block at level {}", level + 1),
            })?;
            let nu = (n - level) as f64 / z;
            let mut u = vec![0.0; m_l * m_next];
            for r in 0..m_l {
                // Think completion: (n_f, p_f, p_d) at level l jumps to
                // (n_f + 1, p_f, p_d) at level l+1 — local index r + 4.
                let dst = r * m_next;
                let src = (r + 4) * m_next;
                u[dst..dst + m_next].copy_from_slice(&inv[src..src + m_next]);
                for x in &mut u[dst..dst + m_next] {
                    *x *= nu;
                }
            }
            let mut s_l = self.a0_two_station(level);
            for &(row_next, col_l, rate) in &self.adown_two_station(level + 1) {
                for r in 0..m_l {
                    s_l[r * m_l + col_l] += u[r * m_next + row_next] * rate;
                }
            }
            u_blocks.push(u);
            s = s_l;
        }
        u_blocks.reverse();

        let pi0 = left_null_vector(&s, 4).ok_or(QnError::InvalidParameter {
            name: "network",
            reason: "level-0 block has no stationary vector".into(),
        })?;

        let levels = forward_pass(pi0, &u_blocks, level_size)?;
        // The specialized local layout n_f * 4 + p_f * 2 + p_d coincides
        // with the generic comp_rank * 4 + phase layout, so metric
        // extraction is shared.
        let comps: Vec<Vec<Vec<usize>>> = (0..=n).map(|l| compositions(l, 2)).collect();
        Ok(self.metrics_from_levels(&levels, &comps))
    }

    /// Within-level block of the two-station specialization (historical
    /// code, bit-for-bit).
    fn a0_two_station(&self, level: usize) -> Vec<f64> {
        let m = 4 * (level + 1);
        let mut a = vec![0.0; m * m];
        let d0f = self.stations[0].d0();
        let d1f = self.stations[0].d1();
        let d0d = self.stations[1].d0();
        let up_rate = if level < self.population {
            (self.population - level) as f64 / self.think_time
        } else {
            0.0
        };
        for n_f in 0..=level {
            let n_d = level - n_f;
            for p_f in 0..2 {
                for p_d in 0..2 {
                    let s = n_f * 4 + p_f * 2 + p_d;
                    let mut exit = up_rate;
                    if n_f > 0 {
                        exit += -d0f[p_f][p_f];
                        // Hidden front phase change.
                        let hidden = d0f[p_f][1 - p_f];
                        if hidden > 0.0 {
                            a[s * m + (n_f * 4 + (1 - p_f) * 2 + p_d)] += hidden;
                        }
                        // Front completion: job moves to the DB, same level.
                        for (j, &rate) in d1f[p_f].iter().enumerate() {
                            if rate > 0.0 {
                                a[s * m + ((n_f - 1) * 4 + j * 2 + p_d)] += rate;
                            }
                        }
                    }
                    if n_d > 0 {
                        exit += -d0d[p_d][p_d];
                        let hidden = d0d[p_d][1 - p_d];
                        if hidden > 0.0 {
                            a[s * m + (n_f * 4 + p_f * 2 + (1 - p_d))] += hidden;
                        }
                        // DB completions leave the level (handled in adown).
                    }
                    a[s * m + s] -= exit;
                }
            }
        }
        a
    }

    /// Down-transitions of the two-station specialization.
    fn adown_two_station(&self, level: usize) -> Vec<(usize, usize, f64)> {
        debug_assert!(level >= 1);
        let d1d = self.stations[1].d1();
        let mut tr = Vec::new();
        for n_f in 0..=level {
            let n_d = level - n_f;
            if n_d == 0 {
                continue;
            }
            for p_f in 0..2 {
                for p_d in 0..2 {
                    let s = n_f * 4 + p_f * 2 + p_d;
                    for (j, &rate) in d1d[p_d].iter().enumerate() {
                        if rate > 0.0 {
                            tr.push((s, n_f * 4 + p_f * 2 + j, rate));
                        }
                    }
                }
            }
        }
        tr
    }

    /// Solve via the generic sparse-CTMC path with an iterative (or dense)
    /// method — useful for cross-validating the direct solver and for
    /// experimenting with solver behaviour on stiff chains.
    ///
    /// The generator is assembled straight into CSR form
    /// ([`MapNetwork::outgoing_csr`]) — no intermediate triplet list — so
    /// the only memory the solve needs beyond the CSR arrays is two state
    /// vectors. This is what pushes exact solves from populations of tens
    /// (dense LU) to hundreds.
    ///
    /// # Errors
    /// Propagates CTMC construction/solver errors; iterative methods may
    /// legitimately return [`QnError::NoConvergence`] on nearly
    /// decomposable chains (see the module docs).
    ///
    /// # Example
    /// ```
    /// use burstcap_map::Map2;
    /// use burstcap_qn::ctmc::SteadyStateMethod;
    /// use burstcap_qn::mapqn::MapNetwork;
    ///
    /// let net = MapNetwork::new(6, 0.5, Map2::poisson(100.0)?, Map2::poisson(50.0)?)?;
    /// let sparse = net.solve_iterative(SteadyStateMethod::default())?;
    /// let oracle = net.solve_iterative(SteadyStateMethod::DenseLu { limit: 1_000 })?;
    /// assert!((sparse.throughput - oracle.throughput).abs() < 1e-6);
    /// # Ok::<(), Box<dyn std::error::Error>>(())
    /// ```
    ///
    /// # Panics
    ///
    /// Only if a justified internal invariant is violated (1 reachable
    /// panic site, e.g. `crates/qn/src/ctmc.rs:520`; `burstcap-lint report` lists them),
    /// never for inputs this API accepts.
    pub fn solve_iterative(&self, method: SteadyStateMethod) -> Result<MapQnSolution, QnError> {
        self.check_state_limit()?;
        let idx = self.indexer()?;
        let chain = Ctmc::from_outgoing_csr(self.outgoing_csr()?)?;
        let engine = match method {
            SteadyStateMethod::DenseLu { .. } => SolveEngine::DenseLu,
            SteadyStateMethod::Sparse(_) => SolveEngine::SparseCsr,
        };
        let run = chain.steady_state_run(method, None)?;
        Ok(self
            .metrics_from_flat(&idx, &run.pi)
            .with_diagnostics(SolveDiagnostics::of_engine(
                engine,
                run.iterations,
                run.final_residual,
            )))
    }

    /// Solve via the sparse engine with production tuning: Gauss-Seidel at a
    /// tolerance tight enough that throughput agrees with the dense LU
    /// oracle to ~1e-8 on well-conditioned models.
    ///
    /// Prefer this over [`MapNetwork::solve`] when the state space is large
    /// (the direct level-reduction inverts one dense block per level, the
    /// sparse sweep is `O(transitions)` per iteration) and the fitted MAPs
    /// are not extremely stiff; prefer [`MapNetwork::solve`] when phase
    /// persistence is close to 1 and sweeps stall.
    ///
    /// # Errors
    /// Propagates construction errors and [`QnError::NoConvergence`].
    ///
    /// # Example
    /// ```
    /// use burstcap_map::Map2;
    /// use burstcap_qn::mapqn::MapNetwork;
    ///
    /// let net = MapNetwork::new(40, 0.5, Map2::poisson(100.0)?, Map2::poisson(50.0)?)?;
    /// let sparse = net.solve_sparse()?;
    /// let direct = net.solve()?;
    /// assert!((sparse.throughput - direct.throughput).abs() / direct.throughput < 1e-8);
    /// # Ok::<(), Box<dyn std::error::Error>>(())
    /// ```
    ///
    /// # Panics
    ///
    /// Only if a justified internal invariant is violated (1 reachable
    /// panic site, e.g. `crates/qn/src/ctmc.rs:520`; `burstcap-lint report` lists them),
    /// never for inputs this API accepts.
    pub fn solve_sparse(&self) -> Result<MapQnSolution, QnError> {
        // A cold solve is exactly the warm-startable path without a guess;
        // one place owns the production tuning.
        Ok(self.solve_sparse_with_initial(None)?.0)
    }

    /// Warm-startable sparse solve: the production Gauss-Seidel engine of
    /// [`MapNetwork::solve_sparse`], seeded from a caller-provided
    /// stationary-vector guess, returning both the metrics **and** the
    /// stationary vector so consecutive solves can chain.
    ///
    /// This is the online-planning entry point: a rolling re-fit changes
    /// the MAP rates slightly while the state space — which depends only on
    /// the population and station count — stays fixed, so the previous
    /// window's stationary vector is an excellent initial iterate (the
    /// underlying seam is [`crate::ctmc::Ctmc::steady_state_from`], which
    /// normalizes and floors the guess). With `None` (or after a re-sized
    /// model) the solve starts cold from the uniform distribution, exactly
    /// like [`MapNetwork::solve_sparse`].
    ///
    /// # Errors
    /// Rejects a guess whose length differs from
    /// [`MapNetwork::state_count`]; otherwise as
    /// [`MapNetwork::solve_sparse`] (including
    /// [`QnError::NoConvergence`] on nearly decomposable chains — callers
    /// wanting the stiffness-proof fallback should retry with
    /// [`MapNetwork::solve`]).
    ///
    /// # Example
    /// ```
    /// use burstcap_map::Map2;
    /// use burstcap_qn::mapqn::MapNetwork;
    ///
    /// let net = MapNetwork::new(20, 0.5, Map2::poisson(100.0)?, Map2::poisson(50.0)?)?;
    /// let (cold, pi) = net.solve_sparse_with_initial(None)?;
    /// // Re-solve a slightly perturbed model warm-started from pi.
    /// let drifted = MapNetwork::new(20, 0.5, Map2::poisson(98.0)?, Map2::poisson(51.0)?)?;
    /// let (warm, _) = drifted.solve_sparse_with_initial(Some(pi))?;
    /// assert!((warm.throughput - cold.throughput).abs() / cold.throughput < 0.05);
    /// # Ok::<(), Box<dyn std::error::Error>>(())
    /// ```
    ///
    /// # Panics
    ///
    /// Only if a justified internal invariant is violated (1 reachable
    /// panic site, e.g. `crates/qn/src/ctmc.rs:520`; `burstcap-lint report` lists them),
    /// never for inputs this API accepts.
    pub fn solve_sparse_with_initial(
        &self,
        guess: Option<Vec<f64>>,
    ) -> Result<(MapQnSolution, Vec<f64>), QnError> {
        self.solve_sparse_with_initial_traced(guess, &Trace::noop())
    }

    /// [`MapNetwork::solve_sparse_with_initial`] with observability: opens
    /// a `qn.solve` span on `trace` (whose id lands in
    /// [`SolveDiagnostics::trace_id`]) and lets the CSR engine emit its
    /// decimated `ctmc.sweep` residual trajectory inside it. Pass
    /// [`Trace::noop`] — or call the untraced entry point — to observe
    /// nothing at near-zero cost.
    ///
    /// # Errors
    /// As [`MapNetwork::solve_sparse_with_initial`].
    ///
    /// # Panics
    ///
    /// Only if a justified internal invariant is violated (1 reachable
    /// panic site, e.g. `crates/qn/src/ctmc.rs:520`; `burstcap-lint report` lists them),
    /// never for inputs this API accepts.
    pub fn solve_sparse_with_initial_traced(
        &self,
        guess: Option<Vec<f64>>,
        trace: &Trace,
    ) -> Result<(MapQnSolution, Vec<f64>), QnError> {
        self.check_state_limit()?;
        let span = trace.span_with(
            "qn.solve",
            vec![
                ("engine", "sparse_csr".into()),
                ("states", self.state_count().into()),
                ("population", self.population.into()),
            ],
        );
        let idx = self.indexer()?;
        let chain = Ctmc::from_outgoing_csr(self.outgoing_csr()?)?;
        // omega < 1: plain Gauss-Seidel limit-cycles on these QBD chains
        // (see the SparseMethod::GaussSeidel docs).
        let method = SteadyStateMethod::Sparse(SparseMethod::GaussSeidel {
            omega: 0.95,
            tol: 1e-12,
            max_iter: 400_000,
        });
        let run = chain.steady_state_run_traced(method, guess, trace)?;
        let mut diagnostics =
            SolveDiagnostics::of_engine(SolveEngine::SparseCsr, run.iterations, run.final_residual);
        diagnostics.trace_id = span.id();
        let solution = self
            .metrics_from_flat(&idx, &run.pi)
            .with_diagnostics(diagnostics);
        Ok((solution, run.pi))
    }

    /// The matrix-free generator operator for this network: applies `Q`
    /// directly from the per-station `Map2` factors and the combinatorial
    /// ranking, `O(states · M)` memory instead of the CSR engine's
    /// `O(transitions)`. Feed it to [`crate::matfree::steady_state`] (or use
    /// [`MapNetwork::solve_matrix_free`], which does exactly that).
    ///
    /// # Errors
    /// Refuses state spaces beyond the configured limit and spaces whose
    /// size overflows a `usize`.
    pub fn matrix_free(&self) -> Result<MatrixFreeGenerator, QnError> {
        self.check_state_limit()?;
        let idx = self.indexer()?;
        Ok(MatrixFreeGenerator::build(
            self.population,
            self.think_time,
            self.stations.clone(),
            idx,
        ))
    }

    /// Solve via the matrix-free parallel engine: a damped Jacobi sweep over
    /// the operator of [`MapNetwork::matrix_free`], row ranges partitioned
    /// across `workers` scoped threads (`0` = auto: the
    /// `BURSTCAP_SOLVER_WORKERS` env var, else available parallelism).
    ///
    /// The iterates are **bit-identical across worker counts**: every row's
    /// inflow is accumulated in a fixed order regardless of partition, and
    /// normalization runs as a serial pass.
    ///
    /// # Errors
    /// Propagates limit/overflow errors and [`QnError::NoConvergence`] on
    /// chains stiff enough to stall the sweep.
    ///
    /// # Example
    /// ```
    /// use burstcap_map::Map2;
    /// use burstcap_qn::mapqn::MapNetwork;
    ///
    /// let net = MapNetwork::new(12, 0.5, Map2::poisson(100.0)?, Map2::poisson(50.0)?)?;
    /// let mf = net.solve_matrix_free(1)?;
    /// let direct = net.solve()?;
    /// assert!((mf.throughput - direct.throughput).abs() / direct.throughput < 1e-8);
    /// # Ok::<(), Box<dyn std::error::Error>>(())
    /// ```
    pub fn solve_matrix_free(&self, workers: usize) -> Result<MapQnSolution, QnError> {
        Ok(self.solve_matrix_free_with_initial(workers, None)?.0)
    }

    /// Warm-startable matrix-free solve: [`MapNetwork::solve_matrix_free`]
    /// seeded from a caller-provided stationary-vector guess, returning both
    /// the metrics and the stationary vector — the same seam as
    /// [`MapNetwork::solve_sparse_with_initial`], extended to the engine
    /// tier where warm starts matter most (each sweep touches every state).
    ///
    /// # Errors
    /// Rejects a wrong-length guess; otherwise as
    /// [`MapNetwork::solve_matrix_free`].
    pub fn solve_matrix_free_with_initial(
        &self,
        workers: usize,
        guess: Option<Vec<f64>>,
    ) -> Result<(MapQnSolution, Vec<f64>), QnError> {
        self.solve_matrix_free_with_initial_traced(workers, guess, &Trace::noop())
    }

    /// [`MapNetwork::solve_matrix_free_with_initial`] with observability:
    /// opens a `qn.solve` span on `trace` (whose id lands in
    /// [`SolveDiagnostics::trace_id`]) and lets the matrix-free engine emit
    /// its decimated `matfree.sweep` trajectory inside it. The recorded
    /// deterministic trace is **byte-identical across worker counts** —
    /// worker-dependent detail (partition shapes) goes out as volatile
    /// events only; see [`crate::matfree::steady_state_traced`].
    ///
    /// # Errors
    /// As [`MapNetwork::solve_matrix_free_with_initial`].
    pub fn solve_matrix_free_with_initial_traced(
        &self,
        workers: usize,
        guess: Option<Vec<f64>>,
        trace: &Trace,
    ) -> Result<(MapQnSolution, Vec<f64>), QnError> {
        let span = trace.span_with(
            "qn.solve",
            vec![
                ("engine", "matrix_free".into()),
                ("states", self.state_count().into()),
                ("population", self.population.into()),
            ],
        );
        let op = self.matrix_free()?;
        let run = crate::matfree::steady_state_traced(
            &op,
            MatFreeMethod::default(),
            workers,
            guess,
            trace,
        )?;
        let idx = self.indexer()?;
        let mut diagnostics = SolveDiagnostics::of_engine(
            SolveEngine::MatrixFree,
            run.iterations,
            run.final_residual,
        );
        diagnostics.trace_id = span.id();
        let solution = self
            .metrics_from_flat(&idx, &run.pi)
            .with_diagnostics(diagnostics);
        Ok((solution, run.pi))
    }

    /// Bounded warm-startable sparse attempt for the auto tier: tuned so a
    /// stall costs a fraction of the direct solve it falls back to.
    fn solve_sparse_bounded(
        &self,
        guess: Option<Vec<f64>>,
        trace: &Trace,
    ) -> Result<(MapQnSolution, Vec<f64>), QnError> {
        self.check_state_limit()?;
        let span = trace.span_with(
            "qn.solve",
            vec![
                ("engine", "sparse_csr".into()),
                ("states", self.state_count().into()),
                ("population", self.population.into()),
            ],
        );
        let idx = self.indexer()?;
        let chain = Ctmc::from_outgoing_csr(self.outgoing_csr()?)?;
        let method = SteadyStateMethod::Sparse(SparseMethod::GaussSeidel {
            omega: 0.95,
            tol: 1e-10,
            max_iter: 40_000,
        });
        let run = chain.steady_state_run_traced(method, guess, trace)?;
        let mut diagnostics =
            SolveDiagnostics::of_engine(SolveEngine::SparseCsr, run.iterations, run.final_residual);
        diagnostics.trace_id = span.id();
        let solution = self
            .metrics_from_flat(&idx, &run.pi)
            .with_diagnostics(diagnostics);
        Ok((solution, run.pi))
    }

    /// Solve with automatic engine selection — three tiers by state count:
    ///
    /// 1. **Direct** level-reduction (immune to stiffness) up to
    ///    `sparse_above_states`;
    /// 2. **Sparse CSR** Gauss-Seidel up to
    ///    `max(sparse_above_states, `[`AUTO_MATFREE_THRESHOLD`]`)`, with a
    ///    stall falling back to the direct solver;
    /// 3. **Matrix-free parallel** Jacobi above that — the generator is
    ///    never materialized — with a stall falling back to the full-budget
    ///    CSR sweep (the direct solver's dense level blocks are infeasible
    ///    at this size).
    ///
    /// Fallbacks are recorded in [`MapQnSolution::diagnostics`]
    /// (`fell_back = true`), so callers can tell a warm-converged solve from
    /// one that stalled and re-solved. Works for any station count `M`.
    ///
    /// The measured crossovers: direct → CSR around 10⁴ states
    /// ([`AUTO_SPARSE_THRESHOLD`]), CSR → matrix-free around
    /// [`AUTO_MATFREE_THRESHOLD`] states (see `BENCH_baseline.json`).
    ///
    /// # Errors
    /// Propagates state-limit and construction errors, and fallback-engine
    /// failures.
    ///
    /// # Example
    /// ```
    /// use burstcap_map::Map2;
    /// use burstcap_qn::mapqn::{MapNetwork, AUTO_SPARSE_THRESHOLD};
    ///
    /// let net = MapNetwork::new(30, 0.5, Map2::poisson(100.0)?, Map2::poisson(50.0)?)?;
    /// let auto = net.solve_auto(AUTO_SPARSE_THRESHOLD)?; // direct: 2048 states
    /// let forced_sparse = net.solve_auto(0)?; // sparse: threshold below the state count
    /// assert!((auto.throughput - forced_sparse.throughput).abs() / auto.throughput < 1e-8);
    /// # Ok::<(), Box<dyn std::error::Error>>(())
    /// ```
    ///
    /// # Panics
    ///
    /// Only if a justified internal invariant is violated (1 reachable
    /// panic site, e.g. `crates/qn/src/ctmc.rs:520`; `burstcap-lint report` lists them),
    /// never for inputs this API accepts.
    pub fn solve_auto(&self, sparse_above_states: usize) -> Result<MapQnSolution, QnError> {
        Ok(self.solve_auto_with_initial(sparse_above_states, None)?.0)
    }

    /// Warm-startable [`MapNetwork::solve_auto`]: the same three-tier engine
    /// selection, seeded from an optional stationary-vector guess and
    /// returning the stationary vector alongside the metrics. The guess
    /// survives fallbacks: a stalled iterative attempt hands it to the
    /// fallback engine instead of discarding it.
    ///
    /// # Errors
    /// As [`MapNetwork::solve_auto`], plus rejection of wrong-length
    /// guesses.
    ///
    /// # Panics
    ///
    /// Only if a justified internal invariant is violated (1 reachable
    /// panic site, e.g. `crates/qn/src/ctmc.rs:520`; `burstcap-lint report` lists them),
    /// never for inputs this API accepts.
    pub fn solve_auto_with_initial(
        &self,
        sparse_above_states: usize,
        guess: Option<Vec<f64>>,
    ) -> Result<(MapQnSolution, Vec<f64>), QnError> {
        self.solve_auto_traced(sparse_above_states, guess, &Trace::noop())
    }

    /// [`MapNetwork::solve_auto_with_initial`] with observability: opens a
    /// `qn.solve_auto` span on `trace`, emits one `qn.engine` event for the
    /// tier the state count selects and a `qn.fallback` event whenever an
    /// iterative attempt stalls (carrying the sweeps the stalled attempt
    /// burned), and lets the engines emit their residual trajectories
    /// inside the span. [`SolveDiagnostics::trace_id`] links the returned
    /// solution to the span tree; [`SolveDiagnostics::sweeps_per_engine`]
    /// attributes every sweep — stalled attempts included — to the engine
    /// that performed it. Pass [`Trace::noop`] (or call the untraced entry
    /// point) to observe nothing at near-zero cost.
    ///
    /// # Errors
    /// As [`MapNetwork::solve_auto_with_initial`].
    ///
    /// # Panics
    ///
    /// Only if a justified internal invariant is violated (1 reachable
    /// panic site, e.g. `crates/qn/src/ctmc.rs:520`; `burstcap-lint report` lists them),
    /// never for inputs this API accepts.
    pub fn solve_auto_traced(
        &self,
        sparse_above_states: usize,
        guess: Option<Vec<f64>>,
        trace: &Trace,
    ) -> Result<(MapQnSolution, Vec<f64>), QnError> {
        let states = self.state_count();
        let span = trace.span_with(
            "qn.solve_auto",
            vec![
                ("states", states.into()),
                ("population", self.population.into()),
                ("stations", self.stations.len().into()),
            ],
        );
        if states <= sparse_above_states {
            trace.event(
                "qn.engine",
                vec![("engine", "direct".into()), ("tier", 1_u64.into())],
            );
            let (mut sol, pi) = self.solve_with_initial(guess)?;
            sol.diagnostics.trace_id = span.id();
            return Ok((sol, pi));
        }
        if states <= AUTO_MATFREE_THRESHOLD.max(sparse_above_states) {
            // Tier 2: bounded sparse attempt; a stall (fitted bursty MAPs
            // with phase persistence close to 1 make the chain nearly
            // completely decomposable) falls back to the direct solver.
            trace.event(
                "qn.engine",
                vec![("engine", "sparse_csr".into()), ("tier", 2_u64.into())],
            );
            return match self.solve_sparse_bounded(guess.clone(), trace) {
                Err(QnError::NoConvergence {
                    iterations: stalled,
                    ..
                }) => {
                    trace.event(
                        "qn.fallback",
                        vec![
                            ("from", "sparse_csr".into()),
                            ("to", "direct".into()),
                            ("stalled_sweeps", stalled.into()),
                        ],
                    );
                    let (sol, pi) = self.solve_with_initial(guess)?;
                    let mut diagnostics = SolveDiagnostics::direct();
                    diagnostics.fell_back = true;
                    diagnostics
                        .sweeps_per_engine
                        .tally(SolveEngine::SparseCsr, stalled);
                    diagnostics.trace_id = span.id();
                    Ok((sol.with_diagnostics(diagnostics), pi))
                }
                other => other,
            };
        }
        // Tier 3: matrix-free parallel sweep; a stall falls back to the
        // full-budget CSR sweep (the direct solver's dense level blocks are
        // infeasible at this scale).
        trace.event(
            "qn.engine",
            vec![("engine", "matrix_free".into()), ("tier", 3_u64.into())],
        );
        match self.solve_matrix_free_with_initial_traced(0, guess.clone(), trace) {
            Err(QnError::NoConvergence {
                iterations: stalled,
                ..
            }) => {
                trace.event(
                    "qn.fallback",
                    vec![
                        ("from", "matrix_free".into()),
                        ("to", "sparse_csr".into()),
                        ("stalled_sweeps", stalled.into()),
                    ],
                );
                let (mut sol, pi) = self.solve_sparse_with_initial_traced(guess, trace)?;
                sol.diagnostics.fell_back = true;
                sol.diagnostics
                    .sweeps_per_engine
                    .tally(SolveEngine::MatrixFree, stalled);
                Ok((sol, pi))
            }
            other => other,
        }
    }

    /// Solve a population sweep (one exact solve per population).
    ///
    /// # Errors
    /// Propagates the first per-population failure.
    ///
    /// # Example
    /// ```
    /// use burstcap_map::Map2;
    /// use burstcap_qn::mapqn::MapNetwork;
    ///
    /// let net = MapNetwork::new(1, 0.5, Map2::poisson(100.0)?, Map2::poisson(50.0)?)?;
    /// let sweep = net.solve_sweep(&[1, 5, 10])?;
    /// assert_eq!(sweep.len(), 3);
    /// // Throughput grows with population in a closed network.
    /// assert!(sweep[2].throughput > sweep[0].throughput);
    /// # Ok::<(), Box<dyn std::error::Error>>(())
    /// ```
    pub fn solve_sweep(&self, populations: &[usize]) -> Result<Vec<MapQnSolution>, QnError> {
        populations
            .iter()
            .map(|&pop| {
                MapNetwork {
                    population: pop,
                    think_time: self.think_time,
                    stations: self.stations.clone(),
                    state_limit: self.state_limit,
                }
                .solve()
            })
            .collect()
    }

    /// Visit every transition `(from, to, rate)` of the flat CTMC, in
    /// strictly increasing `from` order (the state enumeration follows the
    /// combinatorial flat index, which is what lets
    /// [`MapNetwork::outgoing_csr`] stream straight into CSR arrays).
    fn for_each_transition(&self, idx: &StateIndexer, mut visit: impl FnMut(usize, usize, f64)) {
        let n = self.population;
        let m = self.stations.len();
        let phases = idx.phases;
        let think_rate = 1.0 / self.think_time;
        let mut occ = vec![0usize; m];
        let mut scratch = vec![0usize; m];
        // Per-station completion-destination bases; phase-independent, so
        // computed once per occupancy vector rather than 2^M times.
        let mut dst_bases = vec![0usize; m];
        loop {
            let total: usize = occ.iter().sum();
            let from_base = idx.occ_rank(&occ) * phases;
            let thinking = (n - total) as f64;
            // Destination bases that do not depend on the phase index.
            let up_base = if total < n {
                scratch.copy_from_slice(&occ);
                scratch[0] += 1;
                idx.occ_rank(&scratch) * phases
            } else {
                0
            };
            for i in 0..m {
                if occ[i] == 0 {
                    continue;
                }
                scratch.copy_from_slice(&occ);
                scratch[i] -= 1;
                if i + 1 < m {
                    scratch[i + 1] += 1;
                }
                dst_bases[i] = idx.occ_rank(&scratch) * phases;
            }
            for q in 0..phases {
                let from = from_base + q;
                if thinking > 0.0 {
                    visit(from, up_base + q, thinking * think_rate);
                }
                for i in 0..m {
                    if occ[i] == 0 {
                        continue;
                    }
                    let p = phase_of(q, i, m);
                    let d0 = self.stations[i].d0();
                    let hidden = d0[p][1 - p];
                    if hidden > 0.0 {
                        visit(from, from_base + with_phase(q, i, 1 - p, m), hidden);
                    }
                    for (j, &rate) in self.stations[i].d1()[p].iter().enumerate() {
                        if rate > 0.0 {
                            visit(from, dst_bases[i] + with_phase(q, i, j, m), rate);
                        }
                    }
                }
            }
            if !next_occupancy(&mut occ, total, n) {
                break;
            }
        }
    }

    /// The off-diagonal generator of the flat CTMC, assembled directly into
    /// CSR form with no intermediate triplet list (each state has at most
    /// `2 + 3M` outgoing transitions, so the arrays are tight).
    ///
    /// # Errors
    /// Construction cannot fail for a validated network; errors are
    /// propagated defensively from the builder.
    ///
    /// # Example
    /// ```
    /// use burstcap_map::Map2;
    /// use burstcap_qn::mapqn::MapNetwork;
    ///
    /// let net = MapNetwork::new(2, 0.5, Map2::poisson(100.0)?, Map2::poisson(50.0)?)?;
    /// let q = net.outgoing_csr()?;
    /// assert_eq!(q.n(), net.state_count());
    /// // Every stored rate is a positive off-diagonal generator entry.
    /// assert!(q.iter().all(|(i, j, rate)| i != j && rate > 0.0));
    /// # Ok::<(), Box<dyn std::error::Error>>(())
    /// ```
    pub fn outgoing_csr(&self) -> Result<CsrMatrix, QnError> {
        let idx = self.indexer()?;
        let mut builder = CsrMatrix::builder(self.state_count());
        builder.reserve(self.state_count() * (2 + 3 * self.stations.len()));
        let mut failed = None;
        self.for_each_transition(&idx, |from, to, rate| {
            if failed.is_none() {
                if let Err(e) = builder.push(from, to, rate) {
                    failed = Some(e);
                }
            }
        });
        match failed {
            Some(e) => Err(e),
            None => Ok(builder.finish()),
        }
    }

    /// Full transition list — the triplet-based reference implementation the
    /// CSR fast path is validated against.
    #[cfg(test)]
    fn flat_transitions(&self) -> Vec<(usize, usize, f64)> {
        let idx = self.indexer().unwrap();
        let mut tr = Vec::with_capacity(self.state_count() * 6);
        self.for_each_transition(&idx, |from, to, rate| tr.push((from, to, rate)));
        tr
    }

    /// Extract metrics from per-level stationary blocks (local layout
    /// `comp_rank * 2^M + phase_index`).
    fn metrics_from_levels(&self, levels: &[Vec<f64>], comps: &[Vec<Vec<usize>>]) -> MapQnSolution {
        let m = self.stations.len();
        let phases = 1usize << m;
        let last = m - 1;
        let d1_last = self.stations[last].d1();
        let mut throughput = 0.0;
        let mut util = vec![0.0; m];
        let mut jobs = vec![0.0; m];
        for (level, block) in levels.iter().enumerate() {
            for (ci, comp) in comps[level].iter().enumerate() {
                for q in 0..phases {
                    let p = block[ci * phases + q];
                    if p == 0.0 {
                        continue;
                    }
                    for i in 0..m {
                        if comp[i] > 0 {
                            util[i] += p;
                            jobs[i] += p * comp[i] as f64;
                        }
                    }
                    if comp[last] > 0 {
                        let pl = phase_of(q, last, m);
                        throughput += p * (d1_last[pl][0] + d1_last[pl][1]);
                    }
                }
            }
        }
        let response_time = if throughput > 0.0 {
            self.population as f64 / throughput - self.think_time
        } else {
            f64::INFINITY
        };
        MapQnSolution {
            throughput,
            utilization_front: util[0],
            utilization_db: util[last],
            mean_jobs_front: jobs[0],
            mean_jobs_db: jobs[last],
            utilization: util,
            mean_jobs: jobs,
            response_time,
            states: self.state_count(),
            // Callers on the iterative paths overwrite this with their real
            // engine/iteration record (`with_diagnostics`).
            diagnostics: SolveDiagnostics::direct(),
        }
    }

    /// Extract metrics from a flat stationary vector (the sparse/dense CTMC
    /// path).
    fn metrics_from_flat(&self, idx: &StateIndexer, pi: &[f64]) -> MapQnSolution {
        let n = self.population;
        let m = self.stations.len();
        let phases = idx.phases;
        // Re-bucket the flat vector into levels for shared metric
        // extraction.
        let comps: Vec<Vec<Vec<usize>>> = (0..=n).map(|l| compositions(l, m)).collect();
        let mut levels: Vec<Vec<f64>> = comps.iter().map(|c| vec![0.0; c.len() * phases]).collect();
        let mut flat = 0usize;
        let mut occ = vec![0usize; m];
        loop {
            let total: usize = occ.iter().sum();
            let local_base = idx.comp_rank(&occ) * phases;
            for q in 0..phases {
                levels[total][local_base + q] = pi[flat];
                flat += 1;
            }
            if !next_occupancy(&mut occ, total, n) {
                break;
            }
        }
        self.metrics_from_levels(&levels, &comps)
    }
}

/// Advance `occ` to the next occupancy vector in lexicographic order (total
/// capped at `n`); returns `false` past the last vector `(n, 0, …, 0)`.
pub(crate) fn next_occupancy(occ: &mut [usize], total: usize, n: usize) -> bool {
    let m = occ.len();
    if total < n {
        occ[m - 1] += 1;
        return true;
    }
    // Total is at the cap: drop the last non-zero component and carry.
    let k = match occ.iter().rposition(|&o| o > 0) {
        Some(k) => k,
        None => return false, // n = 0: single state
    };
    if k == 0 {
        return false;
    }
    occ[k] = 0;
    occ[k - 1] += 1;
    true
}

/// Shared forward pass of the level reduction: `pi_{l+1} = pi_l U_l`, then
/// clip-and-normalize across levels.
fn forward_pass(
    pi0: Vec<f64>,
    u_blocks: &[Vec<f64>],
    level_size: impl Fn(usize) -> usize,
) -> Result<Vec<Vec<f64>>, QnError> {
    let mut levels: Vec<Vec<f64>> = Vec::with_capacity(u_blocks.len() + 1);
    levels.push(pi0);
    for (level, u) in u_blocks.iter().enumerate() {
        let m_l = level_size(level);
        let m_next = level_size(level + 1);
        let prev = &levels[level];
        let mut next = vec![0.0; m_next];
        for r in 0..m_l {
            let w = prev[r];
            if w == 0.0 {
                continue;
            }
            let row = &u[r * m_next..(r + 1) * m_next];
            for (c, &val) in row.iter().enumerate() {
                next[c] += w * val;
            }
        }
        levels.push(next);
    }

    // Normalize across all levels (clip the tiny negatives roundoff can
    // leave in near-zero entries).
    let mut total = 0.0;
    for level in levels.iter_mut() {
        for x in level.iter_mut() {
            if *x < 0.0 {
                *x = 0.0;
            }
            total += *x;
        }
    }
    if !(total > 0.0) {
        return Err(QnError::InvalidParameter {
            name: "network",
            reason: "stationary vector has no mass".into(),
        });
    }
    for level in levels.iter_mut() {
        for x in level.iter_mut() {
            *x /= total;
        }
    }
    Ok(levels)
}

/// Invert a flat row-major `m x m` matrix in place via Gauss-Jordan with
/// partial pivoting; returns the inverse, or `None` if singular.
fn invert_flat(a: &mut [f64], m: usize) -> Option<Vec<f64>> {
    let mut inv = vec![0.0; m * m];
    for i in 0..m {
        inv[i * m + i] = 1.0;
    }
    for col in 0..m {
        // Pivot search.
        let mut pivot = col;
        let mut best = a[col * m + col].abs();
        for r in (col + 1)..m {
            let v = a[r * m + col].abs();
            if v > best {
                best = v;
                pivot = r;
            }
        }
        if best < 1e-300 {
            return None;
        }
        if pivot != col {
            for k in 0..m {
                a.swap(col * m + k, pivot * m + k);
                inv.swap(col * m + k, pivot * m + k);
            }
        }
        let d = a[col * m + col];
        let dinv = 1.0 / d;
        for k in 0..m {
            a[col * m + k] *= dinv;
            inv[col * m + k] *= dinv;
        }
        for r in 0..m {
            if r == col {
                continue;
            }
            let f = a[r * m + col];
            if f == 0.0 {
                continue;
            }
            for k in 0..m {
                a[r * m + k] -= f * a[col * m + k];
                inv[r * m + k] -= f * inv[col * m + k];
            }
        }
    }
    Some(inv)
}

/// Left null vector of a flat `m x m` matrix (row vector `pi` with
/// `pi A = 0`, `sum(pi) = 1`), or `None` if the nullspace is empty.
fn left_null_vector(a: &[f64], m: usize) -> Option<Vec<f64>> {
    // Solve A^T x = 0 with the last equation replaced by normalization.
    let mut t = vec![0.0; m * m];
    for i in 0..m {
        for j in 0..m {
            t[i * m + j] = a[j * m + i];
        }
    }
    let mut b = vec![0.0; m];
    for j in 0..m {
        t[(m - 1) * m + j] = 1.0;
    }
    b[m - 1] = 1.0;
    // Gaussian elimination with partial pivoting.
    let mut t2 = t;
    for col in 0..m {
        let mut pivot = col;
        let mut best = t2[col * m + col].abs();
        for r in (col + 1)..m {
            let v = t2[r * m + col].abs();
            if v > best {
                best = v;
                pivot = r;
            }
        }
        if best < 1e-300 {
            return None;
        }
        if pivot != col {
            for k in 0..m {
                t2.swap(col * m + k, pivot * m + k);
            }
            b.swap(col, pivot);
        }
        for r in (col + 1)..m {
            let f = t2[r * m + col] / t2[col * m + col];
            if f == 0.0 {
                continue;
            }
            for k in col..m {
                t2[r * m + k] -= f * t2[col * m + k];
            }
            b[r] -= f * b[col];
        }
    }
    for col in (0..m).rev() {
        let mut acc = b[col];
        for k in (col + 1)..m {
            acc -= t2[col * m + k] * b[k];
        }
        b[col] = acc / t2[col * m + col];
    }
    for x in b.iter_mut() {
        if *x < 0.0 {
            *x = 0.0;
        }
    }
    let s: f64 = b.iter().sum();
    if s <= 0.0 {
        return None;
    }
    for x in b.iter_mut() {
        *x /= s;
    }
    Some(b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mva::ClosedMva;
    use burstcap_map::fit::Map2Fitter;

    #[test]
    fn warm_started_sparse_solve_matches_direct() {
        // Moderately bursty fits (the sparse engine's converging regime).
        let front = Map2Fitter::new(0.01, 8.0, 0.03).fit().unwrap().map();
        let db = Map2Fitter::new(0.008, 12.0, 0.02).fit().unwrap().map();
        let net = MapNetwork::new(15, 0.3, front, db).unwrap();
        let direct = net.solve().unwrap();
        let (cold, pi) = net.solve_sparse_with_initial(None).unwrap();
        assert_eq!(pi.len(), net.state_count());
        assert!((cold.throughput - direct.throughput).abs() / direct.throughput < 1e-8);
        // Warm start from the exact answer on a drifted model: still the
        // right stationary solution.
        let drifted_db = Map2Fitter::new(0.0082, 11.0, 0.021).fit().unwrap().map();
        let drifted = MapNetwork::new(15, 0.3, front, drifted_db).unwrap();
        let (warm, pi2) = drifted.solve_sparse_with_initial(Some(pi)).unwrap();
        let drifted_direct = drifted.solve().unwrap();
        assert!(
            (warm.throughput - drifted_direct.throughput).abs() / drifted_direct.throughput < 1e-8,
            "warm {} vs direct {}",
            warm.throughput,
            drifted_direct.throughput
        );
        assert!((pi2.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        // A wrong-length guess is rejected, not silently discarded.
        assert!(drifted.solve_sparse_with_initial(Some(vec![1.0])).is_err());
    }

    #[test]
    fn exponential_network_matches_mva() {
        // With Poisson (exponential) service the model is product-form and
        // MVA is exact.
        let front = Map2::poisson(1.0 / 0.01).unwrap();
        let db = Map2::poisson(1.0 / 0.006).unwrap();
        let mva = ClosedMva::new(vec![0.01, 0.006], 0.5).unwrap();
        for pop in [1, 5, 20, 60] {
            let exact = MapNetwork::new(pop, 0.5, front, db)
                .unwrap()
                .solve()
                .unwrap();
            let baseline = mva.solve(pop).unwrap();
            assert!(
                (exact.throughput - baseline.throughput).abs() / baseline.throughput < 1e-6,
                "N={pop}: MAP-QN {} vs MVA {}",
                exact.throughput,
                baseline.throughput
            );
            assert!(
                (exact.utilization_front - baseline.utilization[0]).abs() < 1e-6,
                "N={pop}: U_f {} vs {}",
                exact.utilization_front,
                baseline.utilization[0]
            );
        }
    }

    #[test]
    fn three_station_exponential_matches_mva() {
        // The generic tandem against exact MVA in the product-form case.
        let demands = [0.004, 0.01, 0.006];
        let stations: Vec<Map2> = demands
            .iter()
            .map(|&d| Map2::poisson(1.0 / d).unwrap())
            .collect();
        let mva = ClosedMva::new(demands.to_vec(), 0.4).unwrap();
        // Direct-solver level blocks grow as ~4 l^2 at M = 3, so debug-mode
        // tests stay at small populations; larger ones go through the
        // sparse engine (covered elsewhere).
        for pop in [1, 4, 8] {
            let exact = MapNetwork::tandem(pop, 0.4, stations.clone())
                .unwrap()
                .solve()
                .unwrap();
            let baseline = mva.solve(pop).unwrap();
            assert!(
                (exact.throughput - baseline.throughput).abs() / baseline.throughput < 1e-6,
                "N={pop}: MAP-QN {} vs MVA {}",
                exact.throughput,
                baseline.throughput
            );
            for i in 0..3 {
                assert!(
                    (exact.utilization[i] - baseline.utilization[i]).abs() < 1e-6,
                    "N={pop} station {i}: U {} vs {}",
                    exact.utilization[i],
                    baseline.utilization[i]
                );
            }
        }
    }

    #[test]
    fn generic_solver_matches_two_station_reference() {
        // The preserved two-station code is the oracle for the generic
        // level reduction at M = 2.
        let front = Map2Fitter::new(0.02, 50.0, 0.06).fit().unwrap().map();
        let db = Map2Fitter::new(0.03, 100.0, 0.1).fit().unwrap().map();
        let net = MapNetwork::new(12, 0.45, front, db).unwrap();
        let generic = net.solve().unwrap();
        let oracle = net.solve_two_station_reference().unwrap();
        assert!(
            (generic.throughput - oracle.throughput).abs() / oracle.throughput < 1e-10,
            "generic {} vs oracle {}",
            generic.throughput,
            oracle.throughput
        );
        assert!((generic.utilization_db - oracle.utilization_db).abs() < 1e-10);
        assert!((generic.mean_jobs_front - oracle.mean_jobs_front).abs() < 1e-8);
    }

    #[test]
    fn two_station_reference_rejects_other_station_counts() {
        let m = Map2::poisson(1.0).unwrap();
        let net = MapNetwork::tandem(3, 0.5, vec![m, m, m]).unwrap();
        assert!(matches!(
            net.solve_two_station_reference(),
            Err(QnError::InvalidParameter {
                name: "stations",
                ..
            })
        ));
    }

    #[test]
    fn single_station_tandem_matches_mva() {
        // M = 1 degenerates to the machine-repair model.
        let st = Map2::poisson(1.0 / 0.02).unwrap();
        let mva = ClosedMva::new(vec![0.02], 0.5).unwrap();
        for pop in [1, 8, 30] {
            let sol = MapNetwork::tandem(pop, 0.5, vec![st])
                .unwrap()
                .solve()
                .unwrap();
            let baseline = mva.solve(pop).unwrap();
            assert!(
                (sol.throughput - baseline.throughput).abs() / baseline.throughput < 1e-6,
                "N={pop}: {} vs {}",
                sol.throughput,
                baseline.throughput
            );
        }
    }

    #[test]
    fn direct_solver_matches_dense_lu() {
        // Cross-validation of the level-reduction against exact dense LU on
        // the full generator, including a stiff bursty MAP.
        let front = Map2Fitter::new(0.02, 50.0, 0.06).fit().unwrap().map();
        let db = Map2Fitter::new(0.03, 100.0, 0.1).fit().unwrap().map();
        let net = MapNetwork::new(8, 0.45, front, db).unwrap();
        let direct = net.solve().unwrap();
        let lu = net
            .solve_iterative(SteadyStateMethod::DenseLu { limit: 10_000 })
            .unwrap();
        assert!(
            (direct.throughput - lu.throughput).abs() / lu.throughput < 1e-8,
            "direct {} vs LU {}",
            direct.throughput,
            lu.throughput
        );
        assert!((direct.utilization_db - lu.utilization_db).abs() < 1e-8);
        assert!((direct.mean_jobs_front - lu.mean_jobs_front).abs() < 1e-6);
    }

    #[test]
    fn three_station_direct_matches_dense_lu() {
        // The generic level reduction against dense LU on a bursty
        // three-station tandem.
        let web = Map2Fitter::new(0.004, 6.0, 0.012).fit().unwrap().map();
        let app = Map2Fitter::new(0.02, 50.0, 0.06).fit().unwrap().map();
        let db = Map2Fitter::new(0.03, 100.0, 0.1).fit().unwrap().map();
        let net = MapNetwork::tandem(6, 0.45, vec![web, app, db]).unwrap();
        let direct = net.solve().unwrap();
        let lu = net
            .solve_iterative(SteadyStateMethod::DenseLu { limit: 10_000 })
            .unwrap();
        assert!(
            (direct.throughput - lu.throughput).abs() / lu.throughput < 1e-8,
            "direct {} vs LU {}",
            direct.throughput,
            lu.throughput
        );
        for i in 0..3 {
            assert!(
                (direct.utilization[i] - lu.utilization[i]).abs() < 1e-8,
                "station {i}"
            );
            assert!((direct.mean_jobs[i] - lu.mean_jobs[i]).abs() < 1e-6);
        }
    }

    #[test]
    fn csr_assembly_matches_triplet_reference() {
        // The streaming CSR path must carry exactly the transitions of the
        // triplet reference implementation.
        let front = Map2Fitter::new(0.02, 50.0, 0.06).fit().unwrap().map();
        let db = Map2Fitter::new(0.03, 100.0, 0.1).fit().unwrap().map();
        let net = MapNetwork::new(6, 0.45, front, db).unwrap();
        let csr = net.outgoing_csr().unwrap();
        let reference = net.flat_transitions();
        assert_eq!(csr.nnz(), reference.len());
        let from_csr: Vec<(usize, usize, f64)> = csr.iter().collect();
        assert_eq!(from_csr, reference);
        // And for a three-station tandem.
        let web = Map2Fitter::new(0.004, 6.0, 0.012).fit().unwrap().map();
        let net3 = MapNetwork::tandem(4, 0.45, vec![web, front, db]).unwrap();
        let csr3 = net3.outgoing_csr().unwrap();
        let reference3 = net3.flat_transitions();
        assert_eq!(csr3.iter().collect::<Vec<_>>(), reference3);
    }

    #[test]
    fn generator_rows_conserve_probability() {
        // Every off-diagonal row sum must be matched by the diagonal the
        // Ctmc builder derives — i.e. the CSR carries a proper generator:
        // all rates positive, all destinations in range, and the chain
        // irreducible enough to solve.
        let web = Map2Fitter::new(0.004, 6.0, 0.012).fit().unwrap().map();
        let app = Map2Fitter::new(0.01, 20.0, 0.03).fit().unwrap().map();
        let db = Map2Fitter::new(0.008, 40.0, 0.02).fit().unwrap().map();
        let net = MapNetwork::tandem(5, 0.3, vec![web, app, db]).unwrap();
        let csr = net.outgoing_csr().unwrap();
        let states = net.state_count();
        assert_eq!(csr.n(), states);
        assert!(csr
            .iter()
            .all(|(i, j, r)| i < states && j < states && r > 0.0 && i != j));
    }

    #[test]
    fn sparse_solver_matches_direct() {
        let front = Map2Fitter::new(0.01, 8.0, 0.03).fit().unwrap().map();
        let db = Map2Fitter::new(0.008, 12.0, 0.02).fit().unwrap().map();
        let net = MapNetwork::new(20, 0.3, front, db).unwrap();
        let sparse = net.solve_sparse().unwrap();
        let direct = net.solve().unwrap();
        assert!(
            (sparse.throughput - direct.throughput).abs() / direct.throughput < 1e-8,
            "sparse {} vs direct {}",
            sparse.throughput,
            direct.throughput
        );
        assert!((sparse.mean_jobs_db - direct.mean_jobs_db).abs() < 1e-6);
    }

    #[test]
    fn three_station_sparse_matches_direct() {
        let web = Map2Fitter::new(0.004, 4.0, 0.012).fit().unwrap().map();
        let app = Map2Fitter::new(0.01, 8.0, 0.03).fit().unwrap().map();
        let db = Map2Fitter::new(0.008, 12.0, 0.02).fit().unwrap().map();
        let net = MapNetwork::tandem(10, 0.3, vec![web, app, db]).unwrap();
        let sparse = net.solve_sparse().unwrap();
        let direct = net.solve().unwrap();
        assert!(
            (sparse.throughput - direct.throughput).abs() / direct.throughput < 1e-8,
            "sparse {} vs direct {}",
            sparse.throughput,
            direct.throughput
        );
        for i in 0..3 {
            assert!((sparse.mean_jobs[i] - direct.mean_jobs[i]).abs() < 1e-6);
        }
    }

    #[test]
    fn solve_auto_agrees_with_direct_on_both_paths() {
        // Very stiff fitted MAPs: the bounded sparse attempt of solve_auto
        // either converges (and must agree) or stalls and falls back to the
        // direct solver — the caller sees the exact answer either way.
        let front = Map2Fitter::new(0.02, 200.0, 0.06).fit().unwrap().map();
        let db = Map2Fitter::new(0.03, 400.0, 0.1).fit().unwrap().map();
        let net = MapNetwork::new(10, 0.45, front, db).unwrap();
        let direct = net.solve().unwrap();
        let via_direct_path = net.solve_auto(usize::MAX).unwrap();
        let via_sparse_path = net.solve_auto(0).unwrap();
        assert_eq!(via_direct_path.throughput, direct.throughput);
        assert!(
            (via_sparse_path.throughput - direct.throughput).abs() / direct.throughput < 1e-7,
            "auto {} vs direct {}",
            via_sparse_path.throughput,
            direct.throughput
        );
    }

    #[test]
    fn single_customer_closed_form() {
        // N=1: X = 1 / (Z + sum of demands) regardless of burstiness
        // profile (means only) — two and three stations.
        let front = Map2Fitter::new(0.02, 50.0, 0.06).fit().unwrap().map();
        let db = Map2Fitter::new(0.03, 100.0, 0.1).fit().unwrap().map();
        let sol = MapNetwork::new(1, 0.45, front, db)
            .unwrap()
            .solve()
            .unwrap();
        let expected = 1.0 / (0.45 + 0.02 + 0.03);
        assert!(
            (sol.throughput - expected).abs() / expected < 1e-6,
            "X = {} vs {}",
            sol.throughput,
            expected
        );
        let web = Map2Fitter::new(0.004, 6.0, 0.012).fit().unwrap().map();
        let sol3 = MapNetwork::tandem(1, 0.45, vec![web, front, db])
            .unwrap()
            .solve()
            .unwrap();
        let expected3 = 1.0 / (0.45 + 0.004 + 0.02 + 0.03);
        assert!(
            (sol3.throughput - expected3).abs() / expected3 < 1e-6,
            "X = {} vs {}",
            sol3.throughput,
            expected3
        );
    }

    #[test]
    fn bursty_service_reduces_throughput() {
        let front = Map2::poisson(1.0 / 0.008).unwrap();
        let db_smooth = Map2::poisson(1.0 / 0.007).unwrap();
        let db_bursty = Map2Fitter::new(0.007, 200.0, 0.02).fit().unwrap().map();
        let pop = 40;
        let smooth = MapNetwork::new(pop, 0.2, front, db_smooth)
            .unwrap()
            .solve()
            .unwrap();
        let bursty = MapNetwork::new(pop, 0.2, front, db_bursty)
            .unwrap()
            .solve()
            .unwrap();
        assert!(
            bursty.throughput < 0.9 * smooth.throughput,
            "bursty {} vs smooth {}",
            bursty.throughput,
            smooth.throughput
        );
    }

    #[test]
    fn matches_discrete_event_simulation() {
        // Cross-validation against the independent DES implementation.
        use burstcap_sim::queues::ClosedMapNetwork;
        let front = Map2Fitter::new(0.01, 20.0, 0.03).fit().unwrap().map();
        let db = Map2Fitter::new(0.006, 80.0, 0.02).fit().unwrap().map();
        let pop = 25;
        let analytic = MapNetwork::new(pop, 0.3, front, db)
            .unwrap()
            .solve()
            .unwrap();
        let sim = ClosedMapNetwork::new(pop, 0.3, front, db)
            .unwrap()
            .run(3000.0, 300.0, 42)
            .unwrap();
        assert!(
            (analytic.throughput - sim.throughput).abs() / analytic.throughput < 0.05,
            "analytic X = {} vs sim X = {}",
            analytic.throughput,
            sim.throughput
        );
        assert!(
            (analytic.utilization_db - sim.utilization_db).abs() < 0.05,
            "analytic U_db = {} vs sim {}",
            analytic.utilization_db,
            sim.utilization_db
        );
    }

    #[test]
    fn population_is_conserved() {
        let front = Map2Fitter::new(0.01, 40.0, 0.03).fit().unwrap().map();
        let db = Map2::poisson(1.0 / 0.004).unwrap();
        let pop = 30;
        let sol = MapNetwork::new(pop, 0.5, front, db)
            .unwrap()
            .solve()
            .unwrap();
        let thinking = sol.throughput * 0.5;
        let total = sol.mean_jobs_front + sol.mean_jobs_db + thinking;
        assert!((total - pop as f64).abs() < 1e-6, "total = {total}");
    }

    #[test]
    fn three_station_population_is_conserved() {
        let web = Map2Fitter::new(0.004, 6.0, 0.012).fit().unwrap().map();
        let app = Map2Fitter::new(0.01, 40.0, 0.03).fit().unwrap().map();
        let db = Map2::poisson(1.0 / 0.004).unwrap();
        let pop = 8;
        let sol = MapNetwork::tandem(pop, 0.5, vec![web, app, db])
            .unwrap()
            .solve()
            .unwrap();
        let thinking = sol.throughput * 0.5;
        let total: f64 = sol.mean_jobs.iter().sum::<f64>() + thinking;
        assert!((total - pop as f64).abs() < 1e-6, "total = {total}");
        // Scalar mirrors point at the first/last stations.
        assert_eq!(sol.mean_jobs_front, sol.mean_jobs[0]);
        assert_eq!(sol.mean_jobs_db, sol.mean_jobs[2]);
        assert_eq!(sol.utilization_front, sol.utilization[0]);
        assert_eq!(sol.utilization_db, sol.utilization[2]);
    }

    #[test]
    fn sweep_matches_individual_solves() {
        let front = Map2::poisson(1.0 / 0.01).unwrap();
        let db = Map2Fitter::new(0.007, 60.0, 0.02).fit().unwrap().map();
        let net = MapNetwork::new(1, 0.4, front, db).unwrap();
        let sweep = net.solve_sweep(&[5, 10, 20]).unwrap();
        for (i, &pop) in [5usize, 10, 20].iter().enumerate() {
            let single = MapNetwork::new(pop, 0.4, front, db)
                .unwrap()
                .solve()
                .unwrap();
            assert!(
                (sweep[i].throughput - single.throughput).abs() / single.throughput < 1e-9,
                "pop {pop}: sweep {} vs single {}",
                sweep[i].throughput,
                single.throughput
            );
        }
    }

    #[test]
    fn throughput_monotone_in_population() {
        let front = Map2Fitter::new(0.008, 40.0, 0.02).fit().unwrap().map();
        let db = Map2Fitter::new(0.006, 150.0, 0.02).fit().unwrap().map();
        let net = MapNetwork::new(1, 0.5, front, db).unwrap();
        let sols = net.solve_sweep(&[1, 5, 15, 30, 50]).unwrap();
        for w in sols.windows(2) {
            assert!(
                w[1].throughput >= w[0].throughput - 1e-9,
                "throughput dipped: {} -> {}",
                w[0].throughput,
                w[1].throughput
            );
        }
    }

    #[test]
    fn state_count_formula() {
        let p = Map2::poisson(1.0).unwrap();
        let net = MapNetwork::new(3, 0.5, p, p).unwrap();
        // Pairs: (0,0..3),(1,0..2),(2,0..1),(3,0) = 4+3+2+1 = 10; x4 phases.
        assert_eq!(net.state_count(), 40);
        // Three stations: C(3 + 3, 3) = 20 occupancy vectors x 8 phases.
        let net3 = MapNetwork::tandem(3, 0.5, vec![p, p, p]).unwrap();
        assert_eq!(net3.state_count(), 160);
        // One station: 4 occupancies x 2 phases.
        let net1 = MapNetwork::tandem(3, 0.5, vec![p]).unwrap();
        assert_eq!(net1.state_count(), 8);
    }

    #[test]
    fn indexer_ranks_are_a_bijection() {
        // occ_rank must enumerate the lex order 0..count for every (n, m).
        for (n, m) in [(5usize, 2usize), (4, 3), (3, 4), (7, 1)] {
            let idx = StateIndexer::try_new(n, m, usize::MAX).unwrap();
            let mut occ = vec![0usize; m];
            let mut expected = 0usize;
            loop {
                let total: usize = occ.iter().sum();
                assert_eq!(idx.occ_rank(&occ), expected, "occ {occ:?}");
                // Within-level rank is consistent with the per-level lex
                // enumeration.
                let comps = compositions(total, m);
                assert_eq!(&comps[idx.comp_rank(&occ)], &occ);
                expected += 1;
                if !next_occupancy(&mut occ, total, n) {
                    break;
                }
            }
            assert_eq!(expected * (1 << m), idx.phases * expected);
            assert_eq!(idx.state_count(), expected * (1 << m));
            let p = Map2::poisson(1.0).unwrap();
            let net = MapNetwork::tandem(n, 0.5, vec![p; m]).unwrap();
            assert_eq!(expected * (1 << m), net.state_count());
        }
    }

    #[test]
    fn flat_index_covers_phase_block() {
        let idx = StateIndexer::try_new(4, 3, usize::MAX).unwrap();
        assert_eq!(idx.flat_index(&[0, 0, 0], 0), 0);
        assert_eq!(idx.flat_index(&[0, 0, 0], 7), 7);
        assert_eq!(idx.flat_index(&[0, 0, 1], 0), 8);
    }

    #[test]
    fn state_limit_enforced() {
        let p = Map2::poisson(1.0).unwrap();
        let net = MapNetwork::new(100, 0.5, p, p).unwrap().state_limit(100);
        assert!(matches!(
            net.solve(),
            Err(QnError::StateSpaceTooLarge { .. })
        ));
    }

    #[test]
    fn validation() {
        let m = Map2::poisson(1.0).unwrap();
        assert!(MapNetwork::new(0, 0.5, m, m).is_err());
        assert!(MapNetwork::new(1, 0.0, m, m).is_err());
        assert!(MapNetwork::tandem(1, 0.5, vec![]).is_err());
    }

    #[test]
    fn response_time_via_littles_law() {
        let front = Map2::poisson(1.0 / 0.01).unwrap();
        let db = Map2::poisson(1.0 / 0.005).unwrap();
        let sol = MapNetwork::new(20, 0.5, front, db)
            .unwrap()
            .solve()
            .unwrap();
        let reconstructed = 20.0 / sol.throughput - 0.5;
        assert!((sol.response_time - reconstructed).abs() < 1e-9);
        assert!(
            sol.response_time > 0.015,
            "response must exceed total demand"
        );
    }

    #[test]
    fn invert_flat_roundtrip() {
        let a = vec![4.0, 7.0, 2.0, 6.0];
        let inv = invert_flat(&mut a.clone(), 2).unwrap();
        // A * A^{-1} = I.
        for i in 0..2 {
            for j in 0..2 {
                let mut acc = 0.0;
                for k in 0..2 {
                    acc += a[i * 2 + k] * inv[k * 2 + j];
                }
                let expect = if i == j { 1.0 } else { 0.0 };
                assert!((acc - expect).abs() < 1e-12);
            }
        }
        let mut singular = vec![1.0, 2.0, 2.0, 4.0];
        assert!(invert_flat(&mut singular, 2).is_none());
    }

    #[test]
    fn left_null_vector_of_generator() {
        // Generator of a 2-state chain with rates 2 (0->1) and 3 (1->0):
        // pi = (0.6, 0.4).
        let a = vec![-2.0, 2.0, 3.0, -3.0];
        let pi = left_null_vector(&a, 2).unwrap();
        assert!((pi[0] - 0.6).abs() < 1e-12);
        assert!((pi[1] - 0.4).abs() < 1e-12);
    }

    #[test]
    fn indexer_construction_rejects_overflow() {
        // C(100, 30) ~ 2.9e25 overflows a 64-bit usize while building the
        // ranking table. The old saturating construction produced corrupt
        // ranks and relied on a separate limit check to never regress; the
        // checked construction reports the typed error even when the caller
        // disabled the limit entirely.
        assert!(matches!(
            StateIndexer::try_new(70, 30, usize::MAX),
            Err(QnError::StateSpaceTooLarge {
                states: usize::MAX,
                limit: usize::MAX,
            })
        ));
        // Just inside: a large but representable space constructs fine
        // (C(73, 3) * 2^3 states).
        let ok = StateIndexer::try_new(70, 3, usize::MAX).unwrap();
        assert_eq!(ok.state_count(), 62_196 * 8);
        // And the network-level entry points surface the same typed error
        // instead of silently corrupting ranks (no OOM: the error fires
        // before any state-sized allocation).
        let p = Map2::poisson(1.0).unwrap();
        let net = MapNetwork::tandem(70, 0.5, vec![p; 30])
            .unwrap()
            .state_limit(usize::MAX);
        assert!(matches!(
            net.solve(),
            Err(QnError::StateSpaceTooLarge { .. })
        ));
        assert!(matches!(
            net.outgoing_csr(),
            Err(QnError::StateSpaceTooLarge { .. })
        ));
        assert!(matches!(
            net.matrix_free(),
            Err(QnError::StateSpaceTooLarge { .. })
        ));
    }

    #[test]
    fn unrank_inverts_occ_rank() {
        for (n, m) in [(5usize, 2usize), (4, 3), (3, 4), (7, 1)] {
            let idx = StateIndexer::try_new(n, m, usize::MAX).unwrap();
            let mut occ = vec![0usize; m];
            loop {
                let total: usize = occ.iter().sum();
                let rank = idx.occ_rank(&occ);
                assert_eq!(idx.unrank(rank), occ, "rank {rank}");
                if !next_occupancy(&mut occ, total, n) {
                    break;
                }
            }
        }
    }

    #[test]
    fn direct_solve_with_initial_returns_stationary_vector() {
        let front = Map2Fitter::new(0.01, 8.0, 0.03).fit().unwrap().map();
        let db = Map2Fitter::new(0.008, 12.0, 0.02).fit().unwrap().map();
        let net = MapNetwork::new(10, 0.3, front, db).unwrap();
        let plain = net.solve().unwrap();
        let (sol, pi) = net.solve_with_initial(None).unwrap();
        assert_eq!(sol.throughput, plain.throughput);
        assert_eq!(pi.len(), net.state_count());
        assert!((pi.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        // The flat vector is in combinatorial order: feeding it back through
        // the sparse metrics path reproduces the direct metrics.
        let idx = net.indexer().unwrap();
        let rebuilt = net.metrics_from_flat(&idx, &pi);
        assert!((rebuilt.throughput - sol.throughput).abs() / sol.throughput < 1e-12);
        // The same vector warm-starts an iterative engine.
        let (warm, _) = net.solve_sparse_with_initial(Some(pi)).unwrap();
        assert!((warm.throughput - sol.throughput).abs() / sol.throughput < 1e-8);
        // A wrong-length guess is rejected through the direct seam too.
        assert!(matches!(
            net.solve_with_initial(Some(vec![1.0])),
            Err(QnError::InvalidParameter { name: "guess", .. })
        ));
    }

    #[test]
    fn diagnostics_identify_engine_and_fallback() {
        let front = Map2Fitter::new(0.01, 8.0, 0.03).fit().unwrap().map();
        let db = Map2Fitter::new(0.008, 12.0, 0.02).fit().unwrap().map();
        let net = MapNetwork::new(10, 0.3, front, db).unwrap();
        // Direct engine: no iterations, no fallback.
        let direct = net.solve().unwrap();
        assert_eq!(direct.diagnostics.engine, SolveEngine::Direct);
        assert_eq!(direct.diagnostics.iterations, 0);
        assert!(!direct.diagnostics.fell_back);
        // Forced sparse tier on a mild model: converges, reports sweeps.
        let sparse = net.solve_auto(0).unwrap();
        assert_eq!(sparse.diagnostics.engine, SolveEngine::SparseCsr);
        assert!(sparse.diagnostics.iterations > 0);
        assert!(!sparse.diagnostics.fell_back);
        // Dense LU oracle tags itself.
        let lu = net
            .solve_iterative(SteadyStateMethod::DenseLu { limit: 100_000 })
            .unwrap();
        assert_eq!(lu.diagnostics.engine, SolveEngine::DenseLu);
        assert_eq!(lu.diagnostics.iterations, 0);
    }

    #[test]
    fn auto_stall_fallback_is_recorded_and_keeps_warm_seam() {
        // Extremely stiff fitted MAPs: the bounded sparse attempt stalls and
        // solve_auto falls back to the direct engine. The diagnostics must
        // say so, and the seam must still hand back a stationary vector.
        let front = Map2Fitter::new(0.02, 200.0, 0.06).fit().unwrap().map();
        let db = Map2Fitter::new(0.03, 400.0, 0.1).fit().unwrap().map();
        let net = MapNetwork::new(10, 0.45, front, db).unwrap();
        let (sol, pi) = net.solve_auto_with_initial(0, None).unwrap();
        assert_eq!(pi.len(), net.state_count());
        assert!((pi.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        let direct = net.solve().unwrap();
        assert!((sol.throughput - direct.throughput).abs() / direct.throughput < 1e-7);
        if sol.diagnostics.fell_back {
            // The stall was recorded, and the fallback engine named.
            assert_eq!(sol.diagnostics.engine, SolveEngine::Direct);
        } else {
            // The attempt converged within budget — equally valid, and the
            // diagnostics say which engine did the work.
            assert_eq!(sol.diagnostics.engine, SolveEngine::SparseCsr);
            assert!(sol.diagnostics.iterations > 0);
        }
    }
}
