//! The paper's analytic model: a closed MAP queueing network.
//!
//! Figure 9 of the paper models the multi-tier system as a closed network of
//! two queues (front server, database server) and a delay (think) stage.
//! Section 4 replaces the exponential servers with fitted **MAP(2) service
//! processes** and solves the model exactly "by building the underlying
//! Markov chain and solving the system of linear equations".
//!
//! [`MapNetwork`] builds exactly that CTMC. A state is
//! `(n_front, n_db, phase_front, phase_db)` with `n_front + n_db <= N`; the
//! remaining customers are thinking. Each server's MAP evolves only while its
//! queue is non-empty (frozen-when-idle semantics, matched bit-for-bit by the
//! discrete-event simulator in `burstcap-sim`).
//!
//! # Solver
//!
//! Fitted bursty MAPs have phase-persistence `gamma` extremely close to 1,
//! which makes the CTMC *nearly completely decomposable* — the regime where
//! sweep methods (Gauss-Seidel, power iteration) stall. The network, however,
//! is **block tridiagonal** in the level `l = n_front + n_db`: think
//! completions move up one level, database completions move down one, and
//! front completions stay within a level. [`MapNetwork::solve`] therefore
//! uses exact block Gaussian elimination over levels (linear level reduction,
//! the finite-QBD direct method), which is immune to stiffness and costs
//! `O(N^4)` time for population `N` — seconds at `N = 150`.
//!
//! For large populations with moderate stiffness the **sparse engine** is
//! the faster route: [`MapNetwork::outgoing_csr`] assembles the generator
//! straight into compressed sparse row form (no triplet list — each state
//! has at most six outgoing transitions), and
//! [`MapNetwork::solve_sparse`] / [`MapNetwork::solve_iterative`] run the
//! CSR-backed Gauss-Seidel or uniformized power iteration of
//! [`crate::ctmc`] on it. The dense LU oracle remains available through
//! [`MapNetwork::solve_iterative`] for cross-validation on small models.

use serde::{Deserialize, Serialize};

use burstcap_map::Map2;

use crate::csr::CsrMatrix;
use crate::ctmc::{Ctmc, SparseMethod, SteadyStateMethod};
use crate::QnError;

/// Default cap on CTMC size (states).
pub const DEFAULT_STATE_LIMIT: usize = 2_000_000;

/// Default state-count crossover for [`MapNetwork::solve_auto`]: below this
/// the `O(N^4)` direct level-reduction is faster, above it the sparse CSR
/// engine wins (measured on MAP(2)×MAP(2) networks; the exact crossover
/// varies a little with stiffness).
pub const AUTO_SPARSE_THRESHOLD: usize = 10_000;

/// Closed network: think (exp) → front queue (MAP2) → DB queue (MAP2).
#[derive(Debug, Clone, PartialEq)]
pub struct MapNetwork {
    population: usize,
    think_time: f64,
    front: Map2,
    db: Map2,
    state_limit: usize,
}

/// Exact steady-state metrics of a [`MapNetwork`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MapQnSolution {
    /// System throughput (database completions per second).
    pub throughput: f64,
    /// Front-server utilization (probability the front queue is busy).
    pub utilization_front: f64,
    /// Database utilization.
    pub utilization_db: f64,
    /// Mean number of requests at the front tier.
    pub mean_jobs_front: f64,
    /// Mean number of requests at the database tier.
    pub mean_jobs_db: f64,
    /// Mean response time of one think-to-think pass (Little's law).
    pub response_time: f64,
    /// Number of CTMC states solved.
    pub states: usize,
}

impl MapNetwork {
    /// Configure the network.
    ///
    /// # Errors
    /// Rejects a zero population and non-positive think times.
    pub fn new(population: usize, think_time: f64, front: Map2, db: Map2) -> Result<Self, QnError> {
        if population == 0 {
            return Err(QnError::InvalidParameter {
                name: "population",
                reason: "population must be at least 1".into(),
            });
        }
        if think_time <= 0.0 || !think_time.is_finite() {
            return Err(QnError::InvalidParameter {
                name: "think_time",
                reason: format!("must be positive and finite, got {think_time}"),
            });
        }
        Ok(MapNetwork {
            population,
            think_time,
            front,
            db,
            state_limit: DEFAULT_STATE_LIMIT,
        })
    }

    /// Override the state-space cap.
    pub fn state_limit(mut self, limit: usize) -> Self {
        self.state_limit = limit;
        self
    }

    /// Number of CTMC states for this population:
    /// `(N+1)(N+2)/2 * 4` phase combinations.
    pub fn state_count(&self) -> usize {
        let n = self.population;
        (n + 1) * (n + 2) / 2 * 4
    }

    /// The configured population.
    pub fn population(&self) -> usize {
        self.population
    }

    /// The configured mean think time.
    pub fn think_time(&self) -> f64 {
        self.think_time
    }

    // ------------------------------------------------------------------
    // Level-structured representation.
    //
    // Level l holds the states with n_front + n_db = l. The local index of
    // (n_front, phase_f, phase_d) is n_front * 4 + phase_f * 2 + phase_d,
    // independent of the level, so the "up" map (think completion, which
    // increments n_front) shifts the local index by exactly 4 in the larger
    // level.
    // ------------------------------------------------------------------

    fn level_size(level: usize) -> usize {
        4 * (level + 1)
    }

    /// Within-level block `A0_l`, including the full exit rates on the
    /// diagonal (up, down, and within-level transitions all drain it).
    fn a0(&self, level: usize) -> Vec<f64> {
        let m = Self::level_size(level);
        let mut a = vec![0.0; m * m];
        let d0f = self.front.d0();
        let d1f = self.front.d1();
        let d0d = self.db.d0();
        let up_rate = if level < self.population {
            (self.population - level) as f64 / self.think_time
        } else {
            0.0
        };
        for n_f in 0..=level {
            let n_d = level - n_f;
            for p_f in 0..2 {
                for p_d in 0..2 {
                    let s = n_f * 4 + p_f * 2 + p_d;
                    let mut exit = up_rate;
                    if n_f > 0 {
                        exit += -d0f[p_f][p_f];
                        // Hidden front phase change.
                        let hidden = d0f[p_f][1 - p_f];
                        if hidden > 0.0 {
                            a[s * m + (n_f * 4 + (1 - p_f) * 2 + p_d)] += hidden;
                        }
                        // Front completion: job moves to the DB, same level.
                        for (j, &rate) in d1f[p_f].iter().enumerate() {
                            if rate > 0.0 {
                                a[s * m + ((n_f - 1) * 4 + j * 2 + p_d)] += rate;
                            }
                        }
                    }
                    if n_d > 0 {
                        exit += -d0d[p_d][p_d];
                        let hidden = d0d[p_d][1 - p_d];
                        if hidden > 0.0 {
                            a[s * m + (n_f * 4 + p_f * 2 + (1 - p_d))] += hidden;
                        }
                        // DB completions leave the level (handled in adown).
                    }
                    a[s * m + s] -= exit;
                }
            }
        }
        a
    }

    /// Down-transitions from `level` to `level - 1` as sparse triples
    /// `(local_from, local_to, rate)`: database completions.
    fn adown(&self, level: usize) -> Vec<(usize, usize, f64)> {
        debug_assert!(level >= 1);
        let d1d = self.db.d1();
        let mut tr = Vec::new();
        for n_f in 0..=level {
            let n_d = level - n_f;
            if n_d == 0 {
                continue;
            }
            for p_f in 0..2 {
                for p_d in 0..2 {
                    let s = n_f * 4 + p_f * 2 + p_d;
                    for (j, &rate) in d1d[p_d].iter().enumerate() {
                        if rate > 0.0 {
                            tr.push((s, n_f * 4 + p_f * 2 + j, rate));
                        }
                    }
                }
            }
        }
        tr
    }

    /// Solve the network exactly by block Gaussian elimination over levels
    /// (the finite-QBD direct method — immune to stiffness, `O(N^4)` time).
    ///
    /// # Errors
    /// Refuses state spaces beyond the configured limit and propagates
    /// numerical failures (singular level blocks, impossible for valid
    /// MAPs).
    ///
    /// # Example
    /// ```
    /// use burstcap_map::Map2;
    /// use burstcap_qn::mapqn::MapNetwork;
    ///
    /// // N = 1 has the closed form X = 1 / (Z + S_front + S_db).
    /// let net = MapNetwork::new(1, 0.5, Map2::poisson(100.0)?, Map2::poisson(50.0)?)?;
    /// let sol = net.solve()?;
    /// let expect = 1.0 / (0.5 + 0.01 + 0.02);
    /// assert!((sol.throughput - expect).abs() / expect < 1e-9);
    /// # Ok::<(), Box<dyn std::error::Error>>(())
    /// ```
    pub fn solve(&self) -> Result<MapQnSolution, QnError> {
        let states = self.state_count();
        if states > self.state_limit {
            return Err(QnError::StateSpaceTooLarge {
                states,
                limit: self.state_limit,
            });
        }
        let n = self.population;
        let z = self.think_time;

        // Backward pass: S_N = A0_N; S_l = A0_l + U_l * Adown_{l+1} where
        // U_l = nu_l * inv(-S_{l+1})[0..m_l rows].
        let mut s = self.a0(n);
        let mut u_blocks: Vec<Vec<f64>> = Vec::with_capacity(n);
        for level in (0..n).rev() {
            let m_next = Self::level_size(level + 1);
            let m_l = Self::level_size(level);
            // inv(-S_{l+1})
            let mut neg = s;
            for x in neg.iter_mut() {
                *x = -*x;
            }
            let inv = invert_flat(&mut neg, m_next).ok_or(QnError::InvalidParameter {
                name: "network",
                reason: format!("singular level block at level {}", level + 1),
            })?;
            let nu = (n - level) as f64 / z;
            let mut u = vec![0.0; m_l * m_next];
            for r in 0..m_l {
                // Think completion: (n_f, p_f, p_d) at level l jumps to
                // (n_f + 1, p_f, p_d) at level l+1 — local index r + 4.
                let dst = r * m_next;
                let src = (r + 4) * m_next;
                u[dst..dst + m_next].copy_from_slice(&inv[src..src + m_next]);
                for x in &mut u[dst..dst + m_next] {
                    *x *= nu;
                }
            }
            // S_l = A0_l + U * Adown_{l+1}.
            let mut s_l = self.a0(level);
            for &(row_next, col_l, rate) in &self.adown(level + 1) {
                for r in 0..m_l {
                    s_l[r * m_l + col_l] += u[r * m_next + row_next] * rate;
                }
            }
            u_blocks.push(u);
            s = s_l;
        }
        u_blocks.reverse();

        // pi_0 S_0 = 0 with normalization: 4x4 nullspace solve.
        let pi0 = left_null_vector(&s, 4).ok_or(QnError::InvalidParameter {
            name: "network",
            reason: "level-0 block has no stationary vector".into(),
        })?;

        // Forward pass: pi_{l+1} = pi_l U_l.
        let mut levels: Vec<Vec<f64>> = Vec::with_capacity(n + 1);
        levels.push(pi0);
        for (level, u) in u_blocks.iter().enumerate() {
            let m_l = Self::level_size(level);
            let m_next = Self::level_size(level + 1);
            let prev = &levels[level];
            let mut next = vec![0.0; m_next];
            for r in 0..m_l {
                let w = prev[r];
                if w == 0.0 {
                    continue;
                }
                let row = &u[r * m_next..(r + 1) * m_next];
                for (c, &val) in row.iter().enumerate() {
                    next[c] += w * val;
                }
            }
            levels.push(next);
        }

        // Normalize across all levels (clip the tiny negatives roundoff can
        // leave in near-zero entries).
        let mut total = 0.0;
        for level in levels.iter_mut() {
            for x in level.iter_mut() {
                if *x < 0.0 {
                    *x = 0.0;
                }
                total += *x;
            }
        }
        if !(total > 0.0) {
            return Err(QnError::InvalidParameter {
                name: "network",
                reason: "stationary vector has no mass".into(),
            });
        }
        for level in levels.iter_mut() {
            for x in level.iter_mut() {
                *x /= total;
            }
        }

        Ok(self.metrics_from_levels(&levels))
    }

    /// Solve via the generic sparse-CTMC path with an iterative (or dense)
    /// method — useful for cross-validating the direct solver and for
    /// experimenting with solver behaviour on stiff chains.
    ///
    /// The generator is assembled straight into CSR form
    /// ([`MapNetwork::outgoing_csr`]) — no intermediate triplet list — so
    /// the only memory the solve needs beyond the CSR arrays is two state
    /// vectors. This is what pushes exact solves from populations of tens
    /// (dense LU) to hundreds.
    ///
    /// # Errors
    /// Propagates CTMC construction/solver errors; iterative methods may
    /// legitimately return [`QnError::NoConvergence`] on nearly
    /// decomposable chains (see the module docs).
    ///
    /// # Example
    /// ```
    /// use burstcap_map::Map2;
    /// use burstcap_qn::ctmc::SteadyStateMethod;
    /// use burstcap_qn::mapqn::MapNetwork;
    ///
    /// let net = MapNetwork::new(6, 0.5, Map2::poisson(100.0)?, Map2::poisson(50.0)?)?;
    /// let sparse = net.solve_iterative(SteadyStateMethod::default())?;
    /// let oracle = net.solve_iterative(SteadyStateMethod::DenseLu { limit: 1_000 })?;
    /// assert!((sparse.throughput - oracle.throughput).abs() < 1e-6);
    /// # Ok::<(), Box<dyn std::error::Error>>(())
    /// ```
    pub fn solve_iterative(&self, method: SteadyStateMethod) -> Result<MapQnSolution, QnError> {
        let states = self.state_count();
        if states > self.state_limit {
            return Err(QnError::StateSpaceTooLarge {
                states,
                limit: self.state_limit,
            });
        }
        let chain = Ctmc::from_outgoing_csr(self.outgoing_csr()?)?;
        let pi = chain.steady_state(method)?;
        // Re-bucket the flat vector into levels for metric extraction.
        let n = self.population;
        let mut levels: Vec<Vec<f64>> = (0..=n).map(|l| vec![0.0; Self::level_size(l)]).collect();
        for n_f in 0..=n {
            for n_d in 0..=(n - n_f) {
                for p_f in 0..2 {
                    for p_d in 0..2 {
                        let flat = self.flat_index(n_f, n_d, p_f, p_d);
                        levels[n_f + n_d][n_f * 4 + p_f * 2 + p_d] = pi[flat];
                    }
                }
            }
        }
        Ok(self.metrics_from_levels(&levels))
    }

    /// Solve via the sparse engine with production tuning: Gauss-Seidel at a
    /// tolerance tight enough that throughput agrees with the dense LU
    /// oracle to ~1e-8 on well-conditioned models.
    ///
    /// Prefer this over [`MapNetwork::solve`] when the state space is large
    /// (the direct level-reduction is `O(N^4)` in the population, the sparse
    /// sweep `O(N^2)` per iteration) and the fitted MAPs are not extremely
    /// stiff; prefer [`MapNetwork::solve`] when phase persistence is close
    /// to 1 and sweeps stall.
    ///
    /// # Errors
    /// Propagates construction errors and [`QnError::NoConvergence`].
    ///
    /// # Example
    /// ```
    /// use burstcap_map::Map2;
    /// use burstcap_qn::mapqn::MapNetwork;
    ///
    /// let net = MapNetwork::new(40, 0.5, Map2::poisson(100.0)?, Map2::poisson(50.0)?)?;
    /// let sparse = net.solve_sparse()?;
    /// let direct = net.solve()?;
    /// assert!((sparse.throughput - direct.throughput).abs() / direct.throughput < 1e-8);
    /// # Ok::<(), Box<dyn std::error::Error>>(())
    /// ```
    pub fn solve_sparse(&self) -> Result<MapQnSolution, QnError> {
        // omega < 1: plain Gauss-Seidel limit-cycles on these QBD chains
        // (see the SparseMethod::GaussSeidel docs).
        self.solve_iterative(SteadyStateMethod::Sparse(SparseMethod::GaussSeidel {
            omega: 0.95,
            tol: 1e-12,
            max_iter: 400_000,
        }))
    }

    /// Solve with automatic engine selection: the direct level-reduction
    /// (`O(N^4)` but immune to stiffness) for state spaces up to
    /// `sparse_above_states`, and the sparse CSR engine above it. A sparse
    /// attempt that stalls — fitted bursty MAPs with phase persistence close
    /// to 1 make the chain nearly completely decomposable — falls back to
    /// the direct solver, so the method never fails merely because the
    /// iterative engine could not converge.
    ///
    /// The measured crossover on MAP(2)×MAP(2) networks sits around 10⁴
    /// states (population ≈ 70): below it the direct solver wins, above it
    /// the sparse sweep's `O(transitions)` iterations win. That value is
    /// exported as [`AUTO_SPARSE_THRESHOLD`].
    ///
    /// # Errors
    /// Propagates state-limit and construction errors, and direct-solver
    /// failures after a fallback.
    ///
    /// # Example
    /// ```
    /// use burstcap_map::Map2;
    /// use burstcap_qn::mapqn::{MapNetwork, AUTO_SPARSE_THRESHOLD};
    ///
    /// let net = MapNetwork::new(30, 0.5, Map2::poisson(100.0)?, Map2::poisson(50.0)?)?;
    /// let auto = net.solve_auto(AUTO_SPARSE_THRESHOLD)?; // direct: 2048 states
    /// let forced_sparse = net.solve_auto(0)?; // sparse: threshold below the state count
    /// assert!((auto.throughput - forced_sparse.throughput).abs() / auto.throughput < 1e-8);
    /// # Ok::<(), Box<dyn std::error::Error>>(())
    /// ```
    pub fn solve_auto(&self, sparse_above_states: usize) -> Result<MapQnSolution, QnError> {
        if self.state_count() <= sparse_above_states {
            return self.solve();
        }
        // Bounded sparse attempt: well within the sweep counts the engine
        // needs on chains it converges on at all, small enough that a stall
        // costs a fraction of the direct solve it falls back to.
        let attempt = self.solve_iterative(SteadyStateMethod::Sparse(SparseMethod::GaussSeidel {
            omega: 0.95,
            tol: 1e-10,
            max_iter: 40_000,
        }));
        match attempt {
            Err(QnError::NoConvergence { .. }) => self.solve(),
            other => other,
        }
    }

    /// Solve a population sweep (one exact solve per population).
    ///
    /// # Errors
    /// Propagates the first per-population failure.
    ///
    /// # Example
    /// ```
    /// use burstcap_map::Map2;
    /// use burstcap_qn::mapqn::MapNetwork;
    ///
    /// let net = MapNetwork::new(1, 0.5, Map2::poisson(100.0)?, Map2::poisson(50.0)?)?;
    /// let sweep = net.solve_sweep(&[1, 5, 10])?;
    /// assert_eq!(sweep.len(), 3);
    /// // Throughput grows with population in a closed network.
    /// assert!(sweep[2].throughput > sweep[0].throughput);
    /// # Ok::<(), Box<dyn std::error::Error>>(())
    /// ```
    pub fn solve_sweep(&self, populations: &[usize]) -> Result<Vec<MapQnSolution>, QnError> {
        populations
            .iter()
            .map(|&pop| {
                MapNetwork {
                    population: pop,
                    think_time: self.think_time,
                    front: self.front,
                    db: self.db,
                    state_limit: self.state_limit,
                }
                .solve()
            })
            .collect()
    }

    /// Flat state index for the generic-CTMC path.
    fn flat_index(&self, n_f: usize, n_d: usize, p_f: usize, p_d: usize) -> usize {
        let n = self.population;
        let before = n_f * (n + 1) - n_f * (n_f.saturating_sub(1)) / 2;
        (before + n_d) * 4 + p_f * 2 + p_d
    }

    /// Visit every transition `(from, to, rate)` of the flat CTMC, in
    /// strictly increasing `from` order (the state enumeration follows the
    /// flat index, which is what lets [`MapNetwork::outgoing_csr`] stream
    /// straight into CSR arrays).
    fn for_each_transition(&self, mut visit: impl FnMut(usize, usize, f64)) {
        let n = self.population;
        let think_rate = 1.0 / self.think_time;
        let d0f = self.front.d0();
        let d1f = self.front.d1();
        let d0d = self.db.d0();
        let d1d = self.db.d1();
        for n_f in 0..=n {
            for n_d in 0..=(n - n_f) {
                let thinking = (n - n_f - n_d) as f64;
                for p_f in 0..2 {
                    for p_d in 0..2 {
                        let from = self.flat_index(n_f, n_d, p_f, p_d);
                        if thinking > 0.0 {
                            visit(
                                from,
                                self.flat_index(n_f + 1, n_d, p_f, p_d),
                                thinking * think_rate,
                            );
                        }
                        if n_f > 0 {
                            let hidden = d0f[p_f][1 - p_f];
                            if hidden > 0.0 {
                                visit(from, self.flat_index(n_f, n_d, 1 - p_f, p_d), hidden);
                            }
                            for (j, &rate) in d1f[p_f].iter().enumerate() {
                                if rate > 0.0 {
                                    visit(from, self.flat_index(n_f - 1, n_d + 1, j, p_d), rate);
                                }
                            }
                        }
                        if n_d > 0 {
                            let hidden = d0d[p_d][1 - p_d];
                            if hidden > 0.0 {
                                visit(from, self.flat_index(n_f, n_d, p_f, 1 - p_d), hidden);
                            }
                            for (j, &rate) in d1d[p_d].iter().enumerate() {
                                if rate > 0.0 {
                                    visit(from, self.flat_index(n_f, n_d - 1, p_f, j), rate);
                                }
                            }
                        }
                    }
                }
            }
        }
    }

    /// The off-diagonal generator of the flat CTMC, assembled directly into
    /// CSR form with no intermediate triplet list (each state has at most
    /// six outgoing transitions, so the arrays are tight).
    ///
    /// # Errors
    /// Construction cannot fail for a validated network; errors are
    /// propagated defensively from the builder.
    ///
    /// # Example
    /// ```
    /// use burstcap_map::Map2;
    /// use burstcap_qn::mapqn::MapNetwork;
    ///
    /// let net = MapNetwork::new(2, 0.5, Map2::poisson(100.0)?, Map2::poisson(50.0)?)?;
    /// let q = net.outgoing_csr()?;
    /// assert_eq!(q.n(), net.state_count());
    /// // Every stored rate is a positive off-diagonal generator entry.
    /// assert!(q.iter().all(|(i, j, rate)| i != j && rate > 0.0));
    /// # Ok::<(), Box<dyn std::error::Error>>(())
    /// ```
    pub fn outgoing_csr(&self) -> Result<CsrMatrix, QnError> {
        let mut builder = CsrMatrix::builder(self.state_count());
        builder.reserve(self.state_count() * 6);
        let mut failed = None;
        self.for_each_transition(|from, to, rate| {
            if failed.is_none() {
                if let Err(e) = builder.push(from, to, rate) {
                    failed = Some(e);
                }
            }
        });
        match failed {
            Some(e) => Err(e),
            None => Ok(builder.finish()),
        }
    }

    /// Full transition list — the triplet-based reference implementation the
    /// CSR fast path is validated against.
    #[cfg(test)]
    fn flat_transitions(&self) -> Vec<(usize, usize, f64)> {
        let mut tr = Vec::with_capacity(self.state_count() * 6);
        self.for_each_transition(|from, to, rate| tr.push((from, to, rate)));
        tr
    }

    /// Extract metrics from per-level stationary blocks.
    fn metrics_from_levels(&self, levels: &[Vec<f64>]) -> MapQnSolution {
        let d1d = self.db.d1();
        let mut throughput = 0.0;
        let mut u_f = 0.0;
        let mut u_d = 0.0;
        let mut q_f = 0.0;
        let mut q_d = 0.0;
        for (level, block) in levels.iter().enumerate() {
            for n_f in 0..=level {
                let n_d = level - n_f;
                for p_f in 0..2 {
                    for p_d in 0..2 {
                        let p = block[n_f * 4 + p_f * 2 + p_d];
                        if n_f > 0 {
                            u_f += p;
                        }
                        if n_d > 0 {
                            u_d += p;
                            throughput += p * (d1d[p_d][0] + d1d[p_d][1]);
                        }
                        q_f += p * n_f as f64;
                        q_d += p * n_d as f64;
                    }
                }
            }
        }
        let response_time = if throughput > 0.0 {
            self.population as f64 / throughput - self.think_time
        } else {
            f64::INFINITY
        };
        MapQnSolution {
            throughput,
            utilization_front: u_f,
            utilization_db: u_d,
            mean_jobs_front: q_f,
            mean_jobs_db: q_d,
            response_time,
            states: self.state_count(),
        }
    }
}

/// Invert a flat row-major `m x m` matrix in place via Gauss-Jordan with
/// partial pivoting; returns the inverse, or `None` if singular.
fn invert_flat(a: &mut [f64], m: usize) -> Option<Vec<f64>> {
    let mut inv = vec![0.0; m * m];
    for i in 0..m {
        inv[i * m + i] = 1.0;
    }
    for col in 0..m {
        // Pivot search.
        let mut pivot = col;
        let mut best = a[col * m + col].abs();
        for r in (col + 1)..m {
            let v = a[r * m + col].abs();
            if v > best {
                best = v;
                pivot = r;
            }
        }
        if best < 1e-300 {
            return None;
        }
        if pivot != col {
            for k in 0..m {
                a.swap(col * m + k, pivot * m + k);
                inv.swap(col * m + k, pivot * m + k);
            }
        }
        let d = a[col * m + col];
        let dinv = 1.0 / d;
        for k in 0..m {
            a[col * m + k] *= dinv;
            inv[col * m + k] *= dinv;
        }
        for r in 0..m {
            if r == col {
                continue;
            }
            let f = a[r * m + col];
            if f == 0.0 {
                continue;
            }
            for k in 0..m {
                a[r * m + k] -= f * a[col * m + k];
                inv[r * m + k] -= f * inv[col * m + k];
            }
        }
    }
    Some(inv)
}

/// Left null vector of a flat `m x m` matrix (row vector `pi` with
/// `pi A = 0`, `sum(pi) = 1`), or `None` if the nullspace is empty.
fn left_null_vector(a: &[f64], m: usize) -> Option<Vec<f64>> {
    // Solve A^T x = 0 with the last equation replaced by normalization.
    let mut t = vec![0.0; m * m];
    for i in 0..m {
        for j in 0..m {
            t[i * m + j] = a[j * m + i];
        }
    }
    let mut b = vec![0.0; m];
    for j in 0..m {
        t[(m - 1) * m + j] = 1.0;
    }
    b[m - 1] = 1.0;
    // Gaussian elimination with partial pivoting.
    let mut t2 = t;
    for col in 0..m {
        let mut pivot = col;
        let mut best = t2[col * m + col].abs();
        for r in (col + 1)..m {
            let v = t2[r * m + col].abs();
            if v > best {
                best = v;
                pivot = r;
            }
        }
        if best < 1e-300 {
            return None;
        }
        if pivot != col {
            for k in 0..m {
                t2.swap(col * m + k, pivot * m + k);
            }
            b.swap(col, pivot);
        }
        for r in (col + 1)..m {
            let f = t2[r * m + col] / t2[col * m + col];
            if f == 0.0 {
                continue;
            }
            for k in col..m {
                t2[r * m + k] -= f * t2[col * m + k];
            }
            b[r] -= f * b[col];
        }
    }
    for col in (0..m).rev() {
        let mut acc = b[col];
        for k in (col + 1)..m {
            acc -= t2[col * m + k] * b[k];
        }
        b[col] = acc / t2[col * m + col];
    }
    for x in b.iter_mut() {
        if *x < 0.0 {
            *x = 0.0;
        }
    }
    let s: f64 = b.iter().sum();
    if s <= 0.0 {
        return None;
    }
    for x in b.iter_mut() {
        *x /= s;
    }
    Some(b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mva::ClosedMva;
    use burstcap_map::fit::Map2Fitter;

    #[test]
    fn exponential_network_matches_mva() {
        // With Poisson (exponential) service the model is product-form and
        // MVA is exact.
        let front = Map2::poisson(1.0 / 0.01).unwrap();
        let db = Map2::poisson(1.0 / 0.006).unwrap();
        let mva = ClosedMva::new(vec![0.01, 0.006], 0.5).unwrap();
        for pop in [1, 5, 20, 60] {
            let exact = MapNetwork::new(pop, 0.5, front, db)
                .unwrap()
                .solve()
                .unwrap();
            let baseline = mva.solve(pop).unwrap();
            assert!(
                (exact.throughput - baseline.throughput).abs() / baseline.throughput < 1e-6,
                "N={pop}: MAP-QN {} vs MVA {}",
                exact.throughput,
                baseline.throughput
            );
            assert!(
                (exact.utilization_front - baseline.utilization[0]).abs() < 1e-6,
                "N={pop}: U_f {} vs {}",
                exact.utilization_front,
                baseline.utilization[0]
            );
        }
    }

    #[test]
    fn direct_solver_matches_dense_lu() {
        // Cross-validation of the level-reduction against exact dense LU on
        // the full generator, including a stiff bursty MAP.
        let front = Map2Fitter::new(0.02, 50.0, 0.06).fit().unwrap().map();
        let db = Map2Fitter::new(0.03, 100.0, 0.1).fit().unwrap().map();
        let net = MapNetwork::new(8, 0.45, front, db).unwrap();
        let direct = net.solve().unwrap();
        let lu = net
            .solve_iterative(SteadyStateMethod::DenseLu { limit: 10_000 })
            .unwrap();
        assert!(
            (direct.throughput - lu.throughput).abs() / lu.throughput < 1e-8,
            "direct {} vs LU {}",
            direct.throughput,
            lu.throughput
        );
        assert!((direct.utilization_db - lu.utilization_db).abs() < 1e-8);
        assert!((direct.mean_jobs_front - lu.mean_jobs_front).abs() < 1e-6);
    }

    #[test]
    fn csr_assembly_matches_triplet_reference() {
        // The streaming CSR path must carry exactly the transitions of the
        // triplet reference implementation.
        let front = Map2Fitter::new(0.02, 50.0, 0.06).fit().unwrap().map();
        let db = Map2Fitter::new(0.03, 100.0, 0.1).fit().unwrap().map();
        let net = MapNetwork::new(6, 0.45, front, db).unwrap();
        let csr = net.outgoing_csr().unwrap();
        let reference = net.flat_transitions();
        assert_eq!(csr.nnz(), reference.len());
        let from_csr: Vec<(usize, usize, f64)> = csr.iter().collect();
        assert_eq!(from_csr, reference);
    }

    #[test]
    fn sparse_solver_matches_direct() {
        let front = Map2Fitter::new(0.01, 8.0, 0.03).fit().unwrap().map();
        let db = Map2Fitter::new(0.008, 12.0, 0.02).fit().unwrap().map();
        let net = MapNetwork::new(20, 0.3, front, db).unwrap();
        let sparse = net.solve_sparse().unwrap();
        let direct = net.solve().unwrap();
        assert!(
            (sparse.throughput - direct.throughput).abs() / direct.throughput < 1e-8,
            "sparse {} vs direct {}",
            sparse.throughput,
            direct.throughput
        );
        assert!((sparse.mean_jobs_db - direct.mean_jobs_db).abs() < 1e-6);
    }

    #[test]
    fn solve_auto_agrees_with_direct_on_both_paths() {
        // Very stiff fitted MAPs: the bounded sparse attempt of solve_auto
        // either converges (and must agree) or stalls and falls back to the
        // direct solver — the caller sees the exact answer either way.
        let front = Map2Fitter::new(0.02, 200.0, 0.06).fit().unwrap().map();
        let db = Map2Fitter::new(0.03, 400.0, 0.1).fit().unwrap().map();
        let net = MapNetwork::new(10, 0.45, front, db).unwrap();
        let direct = net.solve().unwrap();
        let via_direct_path = net.solve_auto(usize::MAX).unwrap();
        let via_sparse_path = net.solve_auto(0).unwrap();
        assert_eq!(via_direct_path.throughput, direct.throughput);
        assert!(
            (via_sparse_path.throughput - direct.throughput).abs() / direct.throughput < 1e-7,
            "auto {} vs direct {}",
            via_sparse_path.throughput,
            direct.throughput
        );
    }

    #[test]
    fn single_customer_closed_form() {
        // N=1: X = 1 / (Z + S_f + S_d) regardless of burstiness profile
        // (means only).
        let front = Map2Fitter::new(0.02, 50.0, 0.06).fit().unwrap().map();
        let db = Map2Fitter::new(0.03, 100.0, 0.1).fit().unwrap().map();
        let sol = MapNetwork::new(1, 0.45, front, db)
            .unwrap()
            .solve()
            .unwrap();
        let expected = 1.0 / (0.45 + 0.02 + 0.03);
        assert!(
            (sol.throughput - expected).abs() / expected < 1e-6,
            "X = {} vs {}",
            sol.throughput,
            expected
        );
    }

    #[test]
    fn bursty_service_reduces_throughput() {
        let front = Map2::poisson(1.0 / 0.008).unwrap();
        let db_smooth = Map2::poisson(1.0 / 0.007).unwrap();
        let db_bursty = Map2Fitter::new(0.007, 200.0, 0.02).fit().unwrap().map();
        let pop = 40;
        let smooth = MapNetwork::new(pop, 0.2, front, db_smooth)
            .unwrap()
            .solve()
            .unwrap();
        let bursty = MapNetwork::new(pop, 0.2, front, db_bursty)
            .unwrap()
            .solve()
            .unwrap();
        assert!(
            bursty.throughput < 0.9 * smooth.throughput,
            "bursty {} vs smooth {}",
            bursty.throughput,
            smooth.throughput
        );
    }

    #[test]
    fn matches_discrete_event_simulation() {
        // Cross-validation against the independent DES implementation.
        use burstcap_sim::queues::ClosedMapNetwork;
        let front = Map2Fitter::new(0.01, 20.0, 0.03).fit().unwrap().map();
        let db = Map2Fitter::new(0.006, 80.0, 0.02).fit().unwrap().map();
        let pop = 25;
        let analytic = MapNetwork::new(pop, 0.3, front, db)
            .unwrap()
            .solve()
            .unwrap();
        let sim = ClosedMapNetwork::new(pop, 0.3, front, db)
            .unwrap()
            .run(3000.0, 300.0, 42)
            .unwrap();
        assert!(
            (analytic.throughput - sim.throughput).abs() / analytic.throughput < 0.05,
            "analytic X = {} vs sim X = {}",
            analytic.throughput,
            sim.throughput
        );
        assert!(
            (analytic.utilization_db - sim.utilization_db).abs() < 0.05,
            "analytic U_db = {} vs sim {}",
            analytic.utilization_db,
            sim.utilization_db
        );
    }

    #[test]
    fn population_is_conserved() {
        let front = Map2Fitter::new(0.01, 40.0, 0.03).fit().unwrap().map();
        let db = Map2::poisson(1.0 / 0.004).unwrap();
        let pop = 30;
        let sol = MapNetwork::new(pop, 0.5, front, db)
            .unwrap()
            .solve()
            .unwrap();
        let thinking = sol.throughput * 0.5;
        let total = sol.mean_jobs_front + sol.mean_jobs_db + thinking;
        assert!((total - pop as f64).abs() < 1e-6, "total = {total}");
    }

    #[test]
    fn sweep_matches_individual_solves() {
        let front = Map2::poisson(1.0 / 0.01).unwrap();
        let db = Map2Fitter::new(0.007, 60.0, 0.02).fit().unwrap().map();
        let net = MapNetwork::new(1, 0.4, front, db).unwrap();
        let sweep = net.solve_sweep(&[5, 10, 20]).unwrap();
        for (i, &pop) in [5usize, 10, 20].iter().enumerate() {
            let single = MapNetwork::new(pop, 0.4, front, db)
                .unwrap()
                .solve()
                .unwrap();
            assert!(
                (sweep[i].throughput - single.throughput).abs() / single.throughput < 1e-9,
                "pop {pop}: sweep {} vs single {}",
                sweep[i].throughput,
                single.throughput
            );
        }
    }

    #[test]
    fn throughput_monotone_in_population() {
        let front = Map2Fitter::new(0.008, 40.0, 0.02).fit().unwrap().map();
        let db = Map2Fitter::new(0.006, 150.0, 0.02).fit().unwrap().map();
        let net = MapNetwork::new(1, 0.5, front, db).unwrap();
        let sols = net.solve_sweep(&[1, 5, 15, 30, 50]).unwrap();
        for w in sols.windows(2) {
            assert!(
                w[1].throughput >= w[0].throughput - 1e-9,
                "throughput dipped: {} -> {}",
                w[0].throughput,
                w[1].throughput
            );
        }
    }

    #[test]
    fn state_count_formula() {
        let net = MapNetwork::new(
            3,
            0.5,
            Map2::poisson(1.0).unwrap(),
            Map2::poisson(1.0).unwrap(),
        )
        .unwrap();
        // Pairs: (0,0..3),(1,0..2),(2,0..1),(3,0) = 4+3+2+1 = 10; x4 phases.
        assert_eq!(net.state_count(), 40);
    }

    #[test]
    fn state_limit_enforced() {
        let net = MapNetwork::new(
            100,
            0.5,
            Map2::poisson(1.0).unwrap(),
            Map2::poisson(1.0).unwrap(),
        )
        .unwrap()
        .state_limit(100);
        assert!(matches!(
            net.solve(),
            Err(QnError::StateSpaceTooLarge { .. })
        ));
    }

    #[test]
    fn validation() {
        let m = Map2::poisson(1.0).unwrap();
        assert!(MapNetwork::new(0, 0.5, m, m).is_err());
        assert!(MapNetwork::new(1, 0.0, m, m).is_err());
    }

    #[test]
    fn response_time_via_littles_law() {
        let front = Map2::poisson(1.0 / 0.01).unwrap();
        let db = Map2::poisson(1.0 / 0.005).unwrap();
        let sol = MapNetwork::new(20, 0.5, front, db)
            .unwrap()
            .solve()
            .unwrap();
        let reconstructed = 20.0 / sol.throughput - 0.5;
        assert!((sol.response_time - reconstructed).abs() < 1e-9);
        assert!(
            sol.response_time > 0.015,
            "response must exceed total demand"
        );
    }

    #[test]
    fn invert_flat_roundtrip() {
        let mut a = vec![4.0, 7.0, 2.0, 6.0];
        let inv = invert_flat(&mut a.clone(), 2).unwrap();
        // A * A^{-1} = I.
        let a0 = [4.0, 7.0, 2.0, 6.0];
        for i in 0..2 {
            for j in 0..2 {
                let mut acc = 0.0;
                for k in 0..2 {
                    acc += a0[i * 2 + k] * inv[k * 2 + j];
                }
                let expect = if i == j { 1.0 } else { 0.0 };
                assert!((acc - expect).abs() < 1e-12);
            }
        }
        let mut singular = vec![1.0, 2.0, 2.0, 4.0];
        assert!(invert_flat(&mut singular, 2).is_none());
        a.clear();
    }

    #[test]
    fn left_null_vector_of_generator() {
        // Generator of a 2-state chain with rates 2 (0->1) and 3 (1->0):
        // pi = (0.6, 0.4).
        let a = vec![-2.0, 2.0, 3.0, -3.0];
        let pi = left_null_vector(&a, 2).unwrap();
        assert!((pi[0] - 0.6).abs() < 1e-12);
        assert!((pi[1] - 0.4).abs() < 1e-12);
    }
}
