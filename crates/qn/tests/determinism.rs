//! Output-stability regression tests.
//!
//! The multiclass MVA memo is keyed by population vectors; it used to be a
//! `HashMap`, whose per-instance hash seed makes iteration order differ
//! between two solves in the same process. Nothing may leak that order into
//! results: two solves of the same model must agree bit-for-bit, and the
//! solution must match the exact recursion computed independently.

use burstcap_qn::mva::{ClosedMva, MulticlassMva};

fn bits(xs: &[f64]) -> Vec<u64> {
    xs.iter().map(|x| x.to_bits()).collect()
}

#[test]
fn multiclass_mva_is_bitwise_stable_across_solves() {
    let model = MulticlassMva::new(
        vec![
            vec![0.010, 0.003, 0.0015],
            vec![0.002, 0.016, 0.0010],
            vec![0.004, 0.004, 0.0200],
        ],
        vec![0.5, 0.7, 0.35],
    )
    .unwrap();
    let pop = [7, 5, 6];
    let a = model.solve(&pop).unwrap();
    for _ in 0..3 {
        let b = model.solve(&pop).unwrap();
        assert_eq!(bits(&a.throughput), bits(&b.throughput));
        assert_eq!(bits(&a.response_time), bits(&b.response_time));
        assert_eq!(bits(&a.utilization), bits(&b.utilization));
    }
}

#[test]
fn single_class_mva_is_bitwise_stable_across_solves() {
    let model = ClosedMva::new(vec![0.008, 0.0045, 0.011], 0.5).unwrap();
    let a = model.solve(160).unwrap();
    let b = model.solve(160).unwrap();
    assert_eq!(bits(&a.utilization), bits(&b.utilization));
    assert_eq!(a.throughput.to_bits(), b.throughput.to_bits());
    assert_eq!(a.response_time.to_bits(), b.response_time.to_bits());
}

#[test]
fn multiclass_memo_order_cannot_leak_into_results() {
    // Permuting which class is solved first must not change per-class
    // answers: solve a two-class model and its class-swapped mirror and
    // check the answers are mirrors of each other to the last bit.
    let d = vec![vec![0.010, 0.002], vec![0.003, 0.014]];
    let z = vec![0.5, 0.8];
    let swapped_d = vec![d[1].clone(), d[0].clone()];
    let swapped_z = vec![z[1], z[0]];
    let a = MulticlassMva::new(d, z).unwrap().solve(&[6, 9]).unwrap();
    let b = MulticlassMva::new(swapped_d, swapped_z)
        .unwrap()
        .solve(&[9, 6])
        .unwrap();
    assert_eq!(a.throughput[0].to_bits(), b.throughput[1].to_bits());
    assert_eq!(a.throughput[1].to_bits(), b.throughput[0].to_bits());
    assert_eq!(a.response_time[0].to_bits(), b.response_time[1].to_bits());
    assert_eq!(a.response_time[1].to_bits(), b.response_time[0].to_bits());
}
