//! Trace-determinism regression tests: the deterministic export of a
//! traced solve must be byte-identical across worker counts.
//!
//! The matrix-free engine partitions its sweeps across scoped threads, but
//! every recorded (non-volatile) event is emitted from the serial residual
//! pass over bit-identical iterates, so the serialized log is a pure
//! function of the model — worker count and partition shapes appear only
//! as volatile events, which `deterministic_json` excludes.

use burstcap_map::fit::Map2Fitter;
use burstcap_obs::Recorder;
use burstcap_qn::mapqn::MapNetwork;
use proptest::prelude::*;

fn bursty_tandem(pop: usize, z: f64, specs: &[(f64, f64)]) -> MapNetwork {
    let stations = specs
        .iter()
        .map(|&(mean, i)| Map2Fitter::new(mean, i, mean * 3.0).fit().unwrap().map())
        .collect();
    MapNetwork::tandem(pop, z, stations).unwrap()
}

/// Traced matrix-free solve of `net` at `workers`, returning the
/// deterministic and full exports.
fn matfree_logs(net: &MapNetwork, workers: usize) -> (String, String) {
    let recorder = Recorder::new();
    net.solve_matrix_free_with_initial_traced(workers, None, &recorder.trace())
        .unwrap();
    (recorder.deterministic_json(), recorder.full_json())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The acceptance property of the observability layer: for random
    /// bursty tandems, the deterministic trace of a matrix-free solve is
    /// byte-identical at 1, 2, and 3 workers.
    #[test]
    fn matfree_trace_is_byte_identical_across_worker_counts(
        mean_f in 5e-3f64..0.03,
        mean_d in 5e-3f64..0.03,
        i_f in 1.5f64..40.0,
        i_d in 1.5f64..40.0,
        z in 0.1f64..0.8,
        pop in 2usize..9,
    ) {
        let net = bursty_tandem(pop, z, &[(mean_f, i_f), (mean_d, i_d)]);
        let (serial, serial_full) = matfree_logs(&net, 1);
        prop_assert!(serial.contains("\"name\": \"matfree.solve\""));
        prop_assert!(serial.contains("\"name\": \"matfree.sweep\""));
        prop_assert!(
            !serial.contains("matfree.workers") && !serial.contains("matfree.partition"),
            "worker topology leaked into the deterministic export"
        );
        prop_assert!(
            serial_full.contains("matfree.workers"),
            "the full export must still record the topology"
        );
        for workers in [2usize, 3] {
            let (parallel, _) = matfree_logs(&net, workers);
            prop_assert!(
                serial == parallel,
                "workers {workers}: trace diverged from serial\nserial:\n{serial}\nparallel:\n{parallel}"
            );
        }
    }
}

#[test]
fn sweep_events_are_decimated_not_exhaustive() {
    // A stiff-ish tandem takes hundreds of sweeps; the trace must record
    // O(log sweeps) of them (power-of-two decimation plus the accepting
    // sweep), never the full trajectory.
    let net = bursty_tandem(6, 0.3, &[(0.02, 30.0), (0.015, 50.0)]);
    let recorder = Recorder::new();
    let (sol, _) = net
        .solve_matrix_free_with_initial_traced(1, None, &recorder.trace())
        .unwrap();
    let sweeps = sol.diagnostics.iterations;
    let recorded = recorder
        .events()
        .iter()
        .filter(|e| e.name == "matfree.sweep")
        .count();
    assert!(recorded >= 2, "expected at least two sweep events");
    let budget = (sweeps as f64).log2() as usize + 2;
    assert!(
        recorded <= budget,
        "{recorded} sweep events for {sweeps} sweeps exceeds the log budget {budget}"
    );
}

#[test]
fn solve_auto_records_engine_selection_and_span_ids() {
    // Tier 1 (direct): a tiny network under the sparse threshold.
    let net = bursty_tandem(2, 0.5, &[(0.01, 5.0)]);
    let recorder = Recorder::new();
    let (sol, _) = net
        .solve_auto_traced(10_000, None, &recorder.trace())
        .unwrap();
    let log = recorder.deterministic_json();
    assert!(log.contains("\"name\": \"qn.solve_auto\""));
    assert!(log.contains("\"name\": \"qn.engine\""));
    assert!(log.contains("\"engine\": \"direct\""));
    assert_ne!(sol.diagnostics.trace_id, 0, "solve_auto must link its span");

    // Tier 2 (sparse CSR): force the threshold to zero.
    let recorder = Recorder::new();
    let (sol, _) = net.solve_auto_traced(0, None, &recorder.trace()).unwrap();
    let log = recorder.deterministic_json();
    assert!(log.contains("\"engine\": \"sparse_csr\""));
    assert!(log.contains("\"name\": \"ctmc.solve\""));
    assert!(log.contains("\"name\": \"ctmc.sweep\""));
    assert_eq!(sol.diagnostics.engine.label(), "sparse_csr");
    assert!(sol.diagnostics.final_residual > 0.0);
    assert_ne!(sol.diagnostics.trace_id, 0);
}

#[test]
fn untraced_solves_emit_nothing_and_repeat_traced_results() {
    // The no-op trace must not alter results: an untraced solve and a
    // traced solve of the same model agree to the last bit.
    let net = bursty_tandem(5, 0.4, &[(0.012, 12.0), (0.02, 25.0)]);
    let recorder = Recorder::new();
    let (traced, pi_t) = net
        .solve_matrix_free_with_initial_traced(2, None, &recorder.trace())
        .unwrap();
    let (untraced, pi_u) = net.solve_matrix_free_with_initial(2, None).unwrap();
    assert_eq!(traced.throughput.to_bits(), untraced.throughput.to_bits());
    assert_eq!(pi_t.len(), pi_u.len());
    for (a, b) in pi_t.iter().zip(&pi_u) {
        assert_eq!(a.to_bits(), b.to_bits());
    }
    // The only diagnostics difference is the trace link itself.
    assert_eq!(untraced.diagnostics.trace_id, 0);
    assert_ne!(traced.diagnostics.trace_id, 0);
    assert_eq!(
        traced.diagnostics.sweeps_per_engine,
        untraced.diagnostics.sweeps_per_engine
    );
    assert!(recorder.event_count() > 0);
}
