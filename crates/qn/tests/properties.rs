//! Property-based tests for the analytic solvers.

use proptest::prelude::*;

use burstcap_map::fit::Map2Fitter;
use burstcap_map::Map2;
use burstcap_qn::ctmc::{Ctmc, SteadyStateMethod};
use burstcap_qn::mapqn::MapNetwork;
use burstcap_qn::matfree::{steady_state, ApplyQ, MatFreeMethod};
use burstcap_qn::mva::ClosedMva;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Birth-death chains: Gauss-Seidel and dense LU agree for arbitrary
    /// rates.
    #[test]
    fn solvers_agree_on_birth_death(
        rates in prop::collection::vec((0.1f64..10.0, 0.1f64..10.0), 2..30),
    ) {
        let n = rates.len() + 1;
        let mut tr = Vec::new();
        for (i, &(up, down)) in rates.iter().enumerate() {
            tr.push((i, i + 1, up));
            tr.push((i + 1, i, down));
        }
        let chain = Ctmc::from_transitions(n, tr).unwrap();
        let gs = chain.steady_state(SteadyStateMethod::default()).unwrap();
        let lu = chain.steady_state(SteadyStateMethod::DenseLu { limit: 100 }).unwrap();
        for i in 0..n {
            // The Gauss-Seidel stopping rule bounds the balance residual,
            // not the per-state error, so allow a modest absolute gap.
            prop_assert!((gs[i] - lu[i]).abs() < 2e-3, "state {i}: {} vs {}", gs[i], lu[i]);
        }
        // Both candidates must satisfy global balance tightly.
        prop_assert!(chain.residual(&lu) < 1e-8);
        // Detailed balance holds for birth-death chains.
        for (i, &(up, down)) in rates.iter().enumerate() {
            prop_assert!((lu[i] * up - lu[i + 1] * down).abs() < 1e-8);
        }
    }

    /// The sparse engine agrees with the dense LU oracle to 1e-8 per state
    /// on random ergodic chains: both members of the
    /// `SteadyStateMethod::Sparse` family (under-relaxed Gauss-Seidel and
    /// uniformized power iteration) against exact elimination.
    #[test]
    fn sparse_family_matches_dense_lu_on_random_ergodic_chains(
        ring in prop::collection::vec(0.2f64..5.0, 3..18),
        extra in prop::collection::vec((0usize..18, 0usize..18, 0.1f64..4.0), 0..40),
    ) {
        let n = ring.len();
        // A directed ring guarantees irreducibility; the extra edges give
        // the chain an arbitrary sparse topology.
        let mut tr: Vec<(usize, usize, f64)> = ring
            .iter()
            .enumerate()
            .map(|(i, &r)| (i, (i + 1) % n, r))
            .collect();
        for &(a, b, r) in &extra {
            let (from, to) = (a % n, b % n);
            if from != to {
                tr.push((from, to, r));
            }
        }
        let chain = Ctmc::from_transitions(n, tr).unwrap();
        let lu = chain.steady_state(SteadyStateMethod::DenseLu { limit: 100 }).unwrap();
        let gs = chain
            .steady_state(SteadyStateMethod::gauss_seidel(0.95, 1e-12, 500_000))
            .unwrap();
        let pw = chain
            .steady_state(SteadyStateMethod::power(1e-13, 5_000_000))
            .unwrap();
        for i in 0..n {
            prop_assert!(
                (gs[i] - lu[i]).abs() < 1e-8,
                "gauss-seidel vs LU at state {i}: {} vs {}",
                gs[i],
                lu[i]
            );
            prop_assert!(
                (pw[i] - lu[i]).abs() < 1e-8,
                "power vs LU at state {i}: {} vs {}",
                pw[i],
                lu[i]
            );
        }
    }

    /// MVA response time is monotone in population (more customers, more
    /// queueing) and utilization stays in [0, 1].
    #[test]
    fn mva_response_monotone(
        d1 in 1e-4f64..0.05,
        d2 in 1e-4f64..0.05,
        z in 0.0f64..2.0,
        n in 1usize..100,
    ) {
        let mva = ClosedMva::new(vec![d1, d2], z).unwrap();
        let a = mva.solve(n).unwrap();
        let b = mva.solve(n + 1).unwrap();
        prop_assert!(b.response_time >= a.response_time - 1e-12);
        for u in &a.utilization {
            prop_assert!((0.0..=1.0).contains(u));
        }
    }

    /// The exact MAP-QN solution of an exponential network coincides with
    /// MVA for any demands (product form).
    #[test]
    fn mapqn_product_form_check(
        d1 in 1e-3f64..0.05,
        d2 in 1e-3f64..0.05,
        pop in 1usize..20,
    ) {
        let front = Map2::poisson(1.0 / d1).unwrap();
        let db = Map2::poisson(1.0 / d2).unwrap();
        let exact = MapNetwork::new(pop, 0.5, front, db).unwrap().solve().unwrap();
        let mva = ClosedMva::new(vec![d1, d2], 0.5).unwrap().solve(pop).unwrap();
        prop_assert!(
            (exact.throughput - mva.throughput).abs() / mva.throughput < 1e-6,
            "X {} vs {}",
            exact.throughput,
            mva.throughput
        );
    }

    /// MVA agrees with a directly assembled CTMC for the exponential
    /// two-station cyclic network (product form): the analytic recursion and
    /// the brute-force chain must produce the same throughput and
    /// utilization.
    #[test]
    fn mva_matches_ctmc_for_exponential_network(
        d1 in 1e-3f64..0.5,
        d2 in 1e-3f64..0.5,
        pop in 1usize..40,
    ) {
        // State: number of jobs at station 1 (the rest queue at station 2).
        // Z = 0 keeps the chain one-dimensional; the MVA recursion still
        // exercises its full population loop.
        let (mu1, mu2) = (1.0 / d1, 1.0 / d2);
        let mut tr = Vec::new();
        for n1 in 0..pop {
            tr.push((n1 + 1, n1, mu1)); // station 1 completes
            tr.push((n1, n1 + 1, mu2)); // station 2 completes
        }
        let chain = Ctmc::from_transitions(pop + 1, tr).unwrap();
        let pi = chain.steady_state(SteadyStateMethod::DenseLu { limit: 100 }).unwrap();
        let x_ctmc: f64 = pi.iter().skip(1).sum::<f64>() * mu1;
        let u2_ctmc: f64 = pi.iter().take(pop).sum::<f64>();

        let mva = ClosedMva::new(vec![d1, d2], 0.0).unwrap().solve(pop).unwrap();
        prop_assert!(
            (mva.throughput - x_ctmc).abs() / x_ctmc < 1e-6,
            "X: mva {} vs ctmc {x_ctmc}",
            mva.throughput
        );
        prop_assert!(
            (mva.utilization[1] - u2_ctmc).abs() < 1e-6,
            "U2: mva {} vs ctmc {u2_ctmc}",
            mva.utilization[1]
        );
    }

    /// Burstiness never helps: for equal means, the bursty network's
    /// throughput is bounded by the exponential network's.
    #[test]
    fn burstiness_never_helps(
        i_db in 2.0f64..200.0,
        pop in 2usize..25,
    ) {
        let front = Map2::poisson(1.0 / 0.008).unwrap();
        let db_exp = Map2::poisson(1.0 / 0.006).unwrap();
        let db_bursty = Map2Fitter::new(0.006, i_db, 0.018).fit().unwrap().map();
        let x_exp = MapNetwork::new(pop, 0.4, front, db_exp).unwrap().solve().unwrap().throughput;
        let x_bursty =
            MapNetwork::new(pop, 0.4, front, db_bursty).unwrap().solve().unwrap().throughput;
        prop_assert!(
            x_bursty <= x_exp * 1.01,
            "bursty X {} exceeds exponential X {}",
            x_bursty,
            x_exp
        );
    }

    /// The generic N-station level reduction at M = 2 reproduces the
    /// preserved two-station solver within 1e-10 on random ergodic
    /// configurations (bursty fitted MAPs, arbitrary think times and
    /// populations).
    #[test]
    fn generic_m2_matches_two_station_reference(
        mean_f in 5e-3f64..0.04,
        mean_d in 5e-3f64..0.04,
        i_f in 1.5f64..120.0,
        i_d in 1.5f64..120.0,
        p95_ratio in 1.5f64..4.0,
        z in 0.1f64..1.0,
        pop in 1usize..12,
    ) {
        let front = Map2Fitter::new(mean_f, i_f, mean_f * p95_ratio).fit().unwrap().map();
        let db = Map2Fitter::new(mean_d, i_d, mean_d * p95_ratio).fit().unwrap().map();
        let net = MapNetwork::new(pop, z, front, db).unwrap();
        let generic = net.solve().unwrap();
        let oracle = net.solve_two_station_reference().unwrap();
        prop_assert!(
            (generic.throughput - oracle.throughput).abs()
                <= 1e-10 * oracle.throughput.max(1.0),
            "X: generic {} vs oracle {}",
            generic.throughput,
            oracle.throughput
        );
        for i in 0..2 {
            prop_assert!(
                (generic.utilization[i] - oracle.utilization[i]).abs() <= 1e-10,
                "U[{i}]: {} vs {}",
                generic.utilization[i],
                oracle.utilization[i]
            );
            prop_assert!(
                (generic.mean_jobs[i] - oracle.mean_jobs[i]).abs() <= 1e-8 * pop as f64,
                "Q[{i}]: {} vs {}",
                generic.mean_jobs[i],
                oracle.mean_jobs[i]
            );
        }
    }
}

proptest! {
    // The N-station direct solves below invert one dense block per level
    // with blocks growing as C(l + M - 1, M - 1), so the case count stays
    // small and populations shrink with the station count.
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// N-station degenerate case: with exponential (Poisson MAP) service at
    /// every station the tandem is product-form and exact MVA must agree
    /// with the CTMC solution — per-station, for 1..=3 stations.
    #[test]
    fn n_station_exponential_tandem_matches_mva(
        demands in prop::collection::vec(2e-3f64..0.05, 1..4),
        z in 0.1f64..1.0,
        pop_raw in 1usize..16,
    ) {
        let m = demands.len();
        // Cap the population by station count to bound the level-block
        // sizes (debug-mode cost).
        let pop = 1 + pop_raw % match m {
            1 => 12,
            2 => 10,
            _ => 6,
        };
        let stations: Vec<Map2> =
            demands.iter().map(|&d| Map2::poisson(1.0 / d).unwrap()).collect();
        let exact = MapNetwork::tandem(pop, z, stations).unwrap().solve().unwrap();
        let mva = ClosedMva::new(demands.clone(), z).unwrap().solve(pop).unwrap();
        prop_assert!(
            (exact.throughput - mva.throughput).abs() / mva.throughput < 1e-6,
            "M={m} N={pop}: X {} vs {}",
            exact.throughput,
            mva.throughput
        );
        for i in 0..m {
            prop_assert!(
                (exact.utilization[i] - mva.utilization[i]).abs() < 1e-6,
                "M={m} N={pop} station {i}: U {} vs {}",
                exact.utilization[i],
                mva.utilization[i]
            );
            prop_assert!(
                (exact.mean_jobs[i] - mva.queue_length[i]).abs() < 1e-5,
                "M={m} N={pop} station {i}: Q {} vs {}",
                exact.mean_jobs[i],
                mva.queue_length[i]
            );
        }
        // Population conservation across stations and the think stage.
        let total: f64 = exact.mean_jobs.iter().sum::<f64>() + exact.throughput * z;
        prop_assert!((total - pop as f64).abs() < 1e-6);
    }

    /// The matrix-free operator is pinned against explicit CSR assembly:
    /// for random fitted `Map2` stations (1..=3 of them), the gather-form
    /// `ApplyQ` must reproduce the assembled chain's SpMV to 1e-12 relative
    /// on a random probe vector, and its exit rates must match exactly.
    #[test]
    fn matrix_free_apply_matches_csr_assembly(
        specs in prop::collection::vec(
            (4e-3f64..0.03, 1.5f64..80.0, 2.0f64..4.0),
            1..4,
        ),
        z in 0.1f64..1.0,
        pop in 1usize..8,
        probe_seed in 1usize..10_000,
    ) {
        let stations: Vec<Map2> = specs
            .iter()
            .map(|&(mean, i, p95_ratio)| {
                Map2Fitter::new(mean, i, mean * p95_ratio).fit().unwrap().map()
            })
            .collect();
        let net = MapNetwork::tandem(pop, z, stations).unwrap();
        let op = net.matrix_free().unwrap();
        let chain = Ctmc::from_outgoing_csr(net.outgoing_csr().unwrap()).unwrap();
        let n = net.state_count();
        prop_assert_eq!(op.n_states(), n);
        for (i, (a, b)) in op.exit_rates().iter().zip(chain.exit_rates()).enumerate() {
            prop_assert!((a - b).abs() <= 1e-12 * b.abs(), "exit rate {i}: {a} vs {b}");
        }
        // A positive pseudo-random probe vector (deterministic per seed).
        let x: Vec<f64> = (0..n)
            .map(|i| 0.5 + ((i * probe_seed + 13) % 997) as f64 / 997.0)
            .collect();
        let mut from_op = vec![0.0; n];
        op.inflow_into(&x, 0..n, &mut from_op);
        let from_csr = chain.incoming_csr().mul_vec(&x);
        for i in 0..n {
            prop_assert!(
                (from_op[i] - from_csr[i]).abs() <= 1e-12 * from_csr[i].abs().max(1.0),
                "row {i}: matrix-free {} vs CSR {}",
                from_op[i],
                from_csr[i]
            );
        }
    }

    /// Parallel and serial sweeps agree across worker counts — including
    /// the 1-thread degenerate case — on random bursty tandems. The design
    /// guarantees bit-identical iterates (fixed per-row accumulation order,
    /// serial normalization), so the assertion is exact equality, far
    /// inside the 1e-10 the satellite task asks for; the solution itself is
    /// checked against the stiffness-proof direct solver.
    #[test]
    fn matrix_free_sweeps_agree_across_worker_counts(
        mean_f in 5e-3f64..0.03,
        mean_d in 5e-3f64..0.03,
        i_f in 1.5f64..40.0,
        i_d in 1.5f64..40.0,
        z in 0.1f64..0.8,
        pop in 2usize..9,
    ) {
        let front = Map2Fitter::new(mean_f, i_f, mean_f * 3.0).fit().unwrap().map();
        let db = Map2Fitter::new(mean_d, i_d, mean_d * 3.0).fit().unwrap().map();
        let net = MapNetwork::new(pop, z, front, db).unwrap();
        let op = net.matrix_free().unwrap();
        let serial = steady_state(&op, MatFreeMethod::default(), 1, None).unwrap();
        for workers in [2usize, 3, 5] {
            let parallel = steady_state(&op, MatFreeMethod::default(), workers, None).unwrap();
            prop_assert!(
                parallel.iterations == serial.iterations && parallel.pi == serial.pi,
                "workers {workers}: parallel sweep diverged from serial"
            );
        }
        let direct = net.solve().unwrap();
        let mf = net.solve_matrix_free(3).unwrap();
        prop_assert!(
            (mf.throughput - direct.throughput).abs() / direct.throughput < 1e-8,
            "matrix-free X {} vs direct {}",
            mf.throughput,
            direct.throughput
        );
    }
}
