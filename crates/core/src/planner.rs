//! The capacity planner: measurements in, throughput predictions out.
//!
//! [`CapacityPlanner`] is the paper's proposed model: characterize each
//! tier (mean, `I`, p95), fit a MAP(2) per tier with the Section 4.1 search,
//! and solve the closed MAP queueing network of Figure 9 exactly for any
//! what-if population. [`MvaBaseline`] is the Section 3.4 strawman — the
//! same network parameterized by mean demands only — whose failure under
//! bottleneck switch motivates the methodology.
//!
//! The think time used for *prediction* (`Z_qn`) is deliberately decoupled
//! from whatever think time generated the measurements (`Z_estim`): Section
//! 4.2 shows that measuring with a larger `Z_estim` (fewer completions per
//! monitoring window, i.e. finer granularity) improves the MAP fit without
//! touching the model's own think time.

use serde::{Deserialize, Serialize};

use burstcap_map::fit::{FittedMap2, Map2Fitter};
use burstcap_qn::mapqn::{MapNetwork, MapQnSolution, AUTO_SPARSE_THRESHOLD};
use burstcap_qn::mva::ClosedMva;

use crate::characterize::{characterize, CharacterizeOptions, ServiceCharacterization};
use crate::measurements::TierMeasurements;
use crate::PlanError;

/// Which CTMC engine solves the what-if model (see
/// [`burstcap_qn::mapqn::MapNetwork::solve_auto`] for the underlying
/// trade-off).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum SolverStrategy {
    /// Three-tier automatic selection: direct level-reduction below the
    /// state-count threshold, sparse CSR engine above it, and the
    /// matrix-free parallel engine past
    /// [`burstcap_qn::mapqn::AUTO_MATFREE_THRESHOLD`] states — each
    /// iterative tier with an automatic fallback when it stalls on a stiff
    /// chain. The default, with the measured crossover
    /// [`AUTO_SPARSE_THRESHOLD`] as the first threshold.
    Auto {
        /// State count above which the sparse engine is tried first.
        sparse_above_states: usize,
    },
    /// Always the direct block level-reduction (`O(N^4)`, stiffness-proof).
    Direct,
    /// Always the sparse CSR engine (Gauss-Seidel; may legitimately fail
    /// with a no-convergence error on nearly decomposable chains).
    Sparse,
    /// Always the matrix-free parallel engine (damped Jacobi over scoped
    /// worker threads; the generator is never materialized, so this is the
    /// only engine that reaches state spaces past the CSR memory wall).
    MatrixFree,
}

impl Default for SolverStrategy {
    fn default() -> Self {
        SolverStrategy::Auto {
            sparse_above_states: AUTO_SPARSE_THRESHOLD,
        }
    }
}

impl SolverStrategy {
    fn solve(self, net: &MapNetwork) -> Result<MapQnSolution, burstcap_qn::QnError> {
        match self {
            SolverStrategy::Auto {
                sparse_above_states,
            } => net.solve_auto(sparse_above_states),
            SolverStrategy::Direct => net.solve(),
            SolverStrategy::Sparse => net.solve_sparse(),
            // workers = 0: the env-var / parallelism default.
            SolverStrategy::MatrixFree => net.solve_matrix_free(0),
        }
    }
}

/// Planner configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PlannerOptions {
    /// Characterization knobs (Figure 2 tolerance etc.).
    pub characterize: CharacterizeOptions,
    /// Relative tolerance on the fitted index of dispersion (paper: ±20%).
    pub i_tolerance: f64,
    /// CTMC engine selection for the prediction solves.
    pub solver: SolverStrategy,
}

impl Default for PlannerOptions {
    fn default() -> Self {
        PlannerOptions {
            characterize: CharacterizeOptions::default(),
            i_tolerance: 0.2,
            solver: SolverStrategy::default(),
        }
    }
}

/// A throughput prediction for one population.
///
/// Per-tier utilizations live in `utilization` (tandem order); the scalar
/// `*_front` / `*_db` fields mirror the first and last tier for continuity
/// with the two-tier model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Prediction {
    /// Target number of emulated browsers (customers).
    pub population: usize,
    /// Predicted system throughput (requests/second).
    pub throughput: f64,
    /// Predicted per-tier utilization, in tier order.
    pub utilization: Vec<f64>,
    /// Predicted first-tier utilization (`utilization[0]`).
    pub utilization_front: f64,
    /// Predicted last-tier utilization (`utilization[M - 1]`).
    pub utilization_db: f64,
    /// Predicted mean response time per request (seconds).
    pub response_time: f64,
}

impl From<(usize, MapQnSolution)> for Prediction {
    fn from((population, s): (usize, MapQnSolution)) -> Self {
        Prediction {
            population,
            throughput: s.throughput,
            utilization_front: s.utilization_front,
            utilization_db: s.utilization_db,
            utilization: s.utilization,
            response_time: s.response_time,
        }
    }
}

/// The burstiness-aware planner (the paper's "Model"), over any number of
/// tiers: each tier is characterized by (mean, `I`, p95), fitted to a
/// MAP(2), and the tiers form the tandem MAP network of `burstcap_qn`.
#[derive(Debug, Clone)]
pub struct CapacityPlanner {
    tiers: Vec<ServiceCharacterization>,
    fits: Vec<FittedMap2>,
    solver: SolverStrategy,
}

impl CapacityPlanner {
    /// Build a two-tier planner from front/database monitoring series using
    /// default options (the paper's model; thin wrapper over
    /// [`CapacityPlanner::from_tier_measurements`]).
    ///
    /// # Errors
    /// Propagates characterization and fitting failures.
    ///
    /// # Panics
    ///
    /// Only if a justified internal invariant is violated (9 reachable
    /// panic sites, e.g. `crates/map/src/fit.rs:305`; `burstcap-lint report` lists them),
    /// never for inputs this API accepts.
    pub fn from_measurements(
        front: &TierMeasurements,
        db: &TierMeasurements,
    ) -> Result<Self, PlanError> {
        Self::with_options(front, db, PlannerOptions::default())
    }

    /// Build a two-tier planner with explicit options (thin wrapper over
    /// [`CapacityPlanner::from_tier_measurements`]).
    ///
    /// # Errors
    /// Propagates characterization and fitting failures.
    ///
    /// # Panics
    ///
    /// Only if a justified internal invariant is violated (9 reachable
    /// panic sites, e.g. `crates/map/src/fit.rs:305`; `burstcap-lint report` lists them),
    /// never for inputs this API accepts.
    pub fn with_options(
        front: &TierMeasurements,
        db: &TierMeasurements,
        options: PlannerOptions,
    ) -> Result<Self, PlanError> {
        Self::from_tier_measurements(&[front, db], options)
    }

    /// Build a planner from monitoring series for any number of tiers, in
    /// tandem order (e.g. web, app, db).
    ///
    /// # Errors
    /// Rejects an empty tier list; propagates characterization and fitting
    /// failures.
    ///
    /// # Panics
    ///
    /// Only if a justified internal invariant is violated (9 reachable
    /// panic sites, e.g. `crates/map/src/fit.rs:305`; `burstcap-lint report` lists them),
    /// never for inputs this API accepts.
    pub fn from_tier_measurements(
        tiers: &[&TierMeasurements],
        options: PlannerOptions,
    ) -> Result<Self, PlanError> {
        let characterized = tiers
            .iter()
            .map(|m| characterize(m, options.characterize))
            .collect::<Result<Vec<_>, _>>()?;
        Self::from_tier_characterizations(characterized, options)
    }

    /// Build a two-tier planner directly from known characterizations
    /// (useful for what-if studies without raw measurements; thin wrapper
    /// over [`CapacityPlanner::from_tier_characterizations`]).
    ///
    /// # Errors
    /// Propagates fitting failures.
    ///
    /// # Panics
    ///
    /// Only if a justified internal invariant is violated (3 reachable
    /// panic sites, e.g. `crates/map/src/fit.rs:305`; `burstcap-lint report` lists them),
    /// never for inputs this API accepts.
    pub fn from_characterizations(
        front: ServiceCharacterization,
        db: ServiceCharacterization,
        options: PlannerOptions,
    ) -> Result<Self, PlanError> {
        Self::from_tier_characterizations(vec![front, db], options)
    }

    /// Build a planner from known per-tier characterizations, in tandem
    /// order.
    ///
    /// # Errors
    /// Rejects an empty tier list; propagates fitting failures.
    ///
    /// # Panics
    ///
    /// Only if a justified internal invariant is violated (3 reachable
    /// panic sites, e.g. `crates/map/src/fit.rs:305`; `burstcap-lint report` lists them),
    /// never for inputs this API accepts.
    pub fn from_tier_characterizations(
        tiers: Vec<ServiceCharacterization>,
        options: PlannerOptions,
    ) -> Result<Self, PlanError> {
        if tiers.is_empty() {
            return Err(PlanError::InvalidMeasurements {
                reason: "need at least one tier".into(),
            });
        }
        let fits = tiers
            .iter()
            .map(|c| fit_characterization(c, options.i_tolerance))
            .collect::<Result<Vec<_>, _>>()?;
        Ok(CapacityPlanner {
            tiers,
            fits,
            solver: options.solver,
        })
    }

    /// Every tier's measured descriptors, in tandem order.
    pub fn tier_characterizations(&self) -> &[ServiceCharacterization] {
        &self.tiers
    }

    /// Every tier's fitted MAP(2) with diagnostics, in tandem order.
    pub fn tier_fits(&self) -> &[FittedMap2] {
        &self.fits
    }

    /// Number of modeled tiers.
    pub fn tier_count(&self) -> usize {
        self.tiers.len()
    }

    /// The first tier's measured descriptors (the front tier of the
    /// two-tier model).
    pub fn front_characterization(&self) -> &ServiceCharacterization {
        &self.tiers[0]
    }

    /// The last tier's measured descriptors (the database tier of the
    /// two-tier model).
    ///
    /// # Panics
    ///
    /// Only if a justified internal invariant is violated (1 reachable
    /// panic site, e.g. `crates/core/src/planner.rs:248`; `burstcap-lint report` lists them),
    /// never for inputs this API accepts.
    pub fn db_characterization(&self) -> &ServiceCharacterization {
        // burstcap-lint: allow(panic-in-lib) — the constructor rejects empty tier lists
        self.tiers.last().expect("validated non-empty")
    }

    /// The first tier's fitted MAP(2) with diagnostics.
    pub fn front_fit(&self) -> &FittedMap2 {
        &self.fits[0]
    }

    /// The last tier's fitted MAP(2) with diagnostics.
    ///
    /// # Panics
    ///
    /// Only if a justified internal invariant is violated (1 reachable
    /// panic site, e.g. `crates/core/src/planner.rs:259`; `burstcap-lint report` lists them),
    /// never for inputs this API accepts.
    pub fn db_fit(&self) -> &FittedMap2 {
        // burstcap-lint: allow(panic-in-lib) — the constructor rejects empty tier lists
        self.fits.last().expect("validated non-empty")
    }

    /// The solver strategy predictions will use.
    pub fn solver_strategy(&self) -> SolverStrategy {
        self.solver
    }

    /// The what-if model at `population` customers and think time
    /// `think_time`: the closed tandem MAP network built from this planner's
    /// fitted tiers, **unsolved**. The escape hatch for callers that drive
    /// the solve themselves — e.g. chaining warm-started sparse solves via
    /// [`burstcap_qn::mapqn::MapNetwork::solve_sparse_with_initial`], or
    /// inspecting the generator — which
    /// [`CapacityPlanner::predict`]'s one-shot strategy cannot express.
    ///
    /// # Errors
    /// Propagates network-construction failures (zero population,
    /// non-positive think time).
    pub fn network(&self, population: usize, think_time: f64) -> Result<MapNetwork, PlanError> {
        Ok(MapNetwork::tandem(
            population,
            think_time,
            self.fits.iter().map(|f| f.map()).collect(),
        )?)
    }

    /// Predict performance at `population` customers with think time
    /// `think_time` (the model's `Z_qn`). The CTMC engine is chosen by the
    /// configured [`SolverStrategy`]: with the default `Auto` strategy,
    /// large state spaces go to the sparse CSR engine and small (or stiff,
    /// non-converging) ones to the direct level-reduction.
    ///
    /// # Errors
    /// Propagates model-solution failures.
    ///
    /// # Panics
    ///
    /// Only if a justified internal invariant is violated (1 reachable
    /// panic site, e.g. `crates/qn/src/ctmc.rs:520`; `burstcap-lint report` lists them),
    /// never for inputs this API accepts.
    pub fn predict(&self, population: usize, think_time: f64) -> Result<Prediction, PlanError> {
        let net = self.network(population, think_time)?;
        Ok((population, self.solver.solve(&net)?).into())
    }

    /// Predict a whole population sweep.
    ///
    /// # Errors
    /// Propagates the first per-population failure.
    ///
    /// # Panics
    ///
    /// Only if a justified internal invariant is violated (2 reachable
    /// panic sites, e.g. `crates/core/src/planner.rs:444`; `burstcap-lint report` lists them),
    /// never for inputs this API accepts.
    pub fn predict_sweep(
        &self,
        populations: &[usize],
        think_time: f64,
    ) -> Result<Vec<Prediction>, PlanError> {
        populations
            .iter()
            .map(|&n| self.predict(n, think_time))
            .collect()
    }
}

/// Fit one tier's MAP(2) from its three descriptors, with the planner's
/// conventions: the p95 target is floored just above the mean (degenerate
/// tails otherwise make the fit infeasible), and underdispersed targets go
/// through the fitter's *recorded* `I` floor.
///
/// The estimators can produce `I` at or below the 1/2 floor of two-phase
/// processes on nearly deterministic tiers, where burstiness is irrelevant
/// anyway: the fitter's opt-in floor raises such targets and records the
/// adjustment on the fit ([`FittedMap2::floored_target_i`]) instead of
/// clamping silently here.
///
/// Public because the online planner re-fits tiers one at a time as their
/// streaming descriptors drift, outside a full [`CapacityPlanner`] rebuild.
///
/// # Errors
/// Propagates fitting failures.
///
/// # Panics
///
/// Only if a justified internal invariant is violated (3 reachable
/// panic sites, e.g. `crates/map/src/fit.rs:305`; `burstcap-lint report` lists them),
/// never for inputs this API accepts.
pub fn fit_characterization(
    c: &ServiceCharacterization,
    i_tolerance: f64,
) -> Result<FittedMap2, PlanError> {
    let p95 = c.p95_service_time.max(c.mean_service_time * 1.05);
    Ok(
        Map2Fitter::new(c.mean_service_time, c.index_of_dispersion, p95)
            .i_tolerance(i_tolerance)
            .i_floor(true)
            .fit()?,
    )
}

/// The Section 3.4 baseline: plain MVA on mean demands, over any number of
/// tiers.
#[derive(Debug, Clone, PartialEq)]
pub struct MvaBaseline {
    demands: Vec<f64>,
}

impl MvaBaseline {
    /// Estimate front/database demands from the same monitoring series the
    /// two-tier planner uses (utilization-law regression).
    ///
    /// # Errors
    /// Propagates regression failures.
    pub fn from_measurements(
        front: &TierMeasurements,
        db: &TierMeasurements,
    ) -> Result<Self, PlanError> {
        Self::from_tier_measurements(&[front, db])
    }

    /// Estimate per-tier demands from monitoring series for any number of
    /// tiers, in tandem order.
    ///
    /// # Errors
    /// Rejects an empty tier list; propagates regression failures.
    pub fn from_tier_measurements(tiers: &[&TierMeasurements]) -> Result<Self, PlanError> {
        if tiers.is_empty() {
            return Err(PlanError::InvalidMeasurements {
                reason: "need at least one tier".into(),
            });
        }
        let demands = tiers
            .iter()
            .map(|m| {
                burstcap_stats::regression::estimate_demand(
                    m.utilization(),
                    m.completions(),
                    m.resolution(),
                )
                .map(|d| d.mean_service_time)
                .map_err(PlanError::from)
            })
            .collect::<Result<Vec<_>, _>>()?;
        Ok(MvaBaseline { demands })
    }

    /// Build from known front/database mean demands.
    ///
    /// # Errors
    /// Rejects non-positive demands.
    pub fn from_demands(front_demand: f64, db_demand: f64) -> Result<Self, PlanError> {
        Self::from_demand_vector(vec![front_demand, db_demand])
    }

    /// Build from known per-tier mean demands, in tandem order.
    ///
    /// # Errors
    /// Rejects an empty list and non-positive demands.
    pub fn from_demand_vector(demands: Vec<f64>) -> Result<Self, PlanError> {
        if demands.is_empty() {
            return Err(PlanError::InvalidMeasurements {
                reason: "need at least one tier".into(),
            });
        }
        if demands.iter().any(|&d| d <= 0.0 || !d.is_finite()) {
            return Err(PlanError::InvalidMeasurements {
                reason: "demands must be positive".into(),
            });
        }
        Ok(MvaBaseline { demands })
    }

    /// The per-tier demands used by the baseline, in tandem order.
    pub fn demands(&self) -> &[f64] {
        &self.demands
    }

    /// The first tier's demand.
    pub fn front_demand(&self) -> f64 {
        self.demands[0]
    }

    /// The last tier's demand.
    ///
    /// # Panics
    ///
    /// Only if a justified internal invariant is violated (1 reachable
    /// panic site, e.g. `crates/core/src/planner.rs:429`; `burstcap-lint report` lists them),
    /// never for inputs this API accepts.
    pub fn db_demand(&self) -> f64 {
        // burstcap-lint: allow(panic-in-lib) — the constructor rejects empty tier lists
        *self.demands.last().expect("validated non-empty")
    }

    /// Exact MVA prediction at `population` customers.
    ///
    /// # Errors
    /// Propagates solver parameter errors.
    ///
    /// # Panics
    ///
    /// Only if a justified internal invariant is violated (2 reachable
    /// panic sites, e.g. `crates/core/src/planner.rs:444`; `burstcap-lint report` lists them),
    /// never for inputs this API accepts.
    pub fn predict(&self, population: usize, think_time: f64) -> Result<Prediction, PlanError> {
        let mva = ClosedMva::new(self.demands.clone(), think_time)?;
        let s = mva.solve(population)?;
        Ok(Prediction {
            population,
            throughput: s.throughput,
            utilization_front: s.utilization[0],
            // burstcap-lint: allow(panic-in-lib) — solutions come from networks validated to hold at least one station
            utilization_db: *s.utilization.last().expect("at least one station"),
            utilization: s.utilization,
            response_time: s.response_time,
        })
    }

    /// Predict a whole population sweep.
    ///
    /// # Errors
    /// Propagates the first per-population failure.
    ///
    /// # Panics
    ///
    /// Only if a justified internal invariant is violated (2 reachable
    /// panic sites, e.g. `crates/core/src/planner.rs:444`; `burstcap-lint report` lists them),
    /// never for inputs this API accepts.
    pub fn predict_sweep(
        &self,
        populations: &[usize],
        think_time: f64,
    ) -> Result<Vec<Prediction>, PlanError> {
        populations
            .iter()
            .map(|&n| self.predict(n, think_time))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Synthetic steady measurements: utilization u, n completions/window.
    fn steady(u: f64, n: u64) -> TierMeasurements {
        TierMeasurements::new(5.0, vec![u; 300], vec![n; 300]).unwrap()
    }

    /// Bursty measurements: alternating regimes of fast and slow windows
    /// with matching utilization so the regression stays consistent.
    fn bursty(base_n: u64) -> TierMeasurements {
        let mut util = Vec::new();
        let mut n = Vec::new();
        for block in 0..30 {
            for _ in 0..10 {
                if block % 2 == 0 {
                    util.push(0.9);
                    n.push(base_n / 4);
                } else {
                    util.push(0.9);
                    n.push(base_n);
                }
            }
        }
        TierMeasurements::new(5.0, util, n).unwrap()
    }

    #[test]
    fn planner_from_steady_measurements() {
        let front = steady(0.5, 250); // S_f = 10 ms
        let db = steady(0.25, 250); // S_d = 5 ms
        let planner = CapacityPlanner::from_measurements(&front, &db).unwrap();
        assert!((planner.front_characterization().mean_service_time - 0.01).abs() < 1e-9);
        assert!((planner.db_characterization().mean_service_time - 0.005).abs() < 1e-9);
        let p = planner.predict(30, 0.5).unwrap();
        assert!(p.throughput > 0.0 && p.throughput <= 100.0);
    }

    #[test]
    fn planner_and_mva_agree_for_low_burstiness() {
        let front = steady(0.5, 250);
        let db = steady(0.25, 250);
        let planner = CapacityPlanner::from_measurements(&front, &db).unwrap();
        let mva = MvaBaseline::from_measurements(&front, &db).unwrap();
        for n in [5, 25, 60] {
            let a = planner.predict(n, 0.5).unwrap().throughput;
            let b = mva.predict(n, 0.5).unwrap().throughput;
            assert!(
                (a - b).abs() / b < 0.08,
                "N={n}: planner {a} vs mva {b} — low-I targets should nearly coincide"
            );
        }
    }

    #[test]
    fn bursty_db_lowers_prediction_vs_mva() {
        let front = steady(0.5, 250);
        let db = bursty(250);
        let planner = CapacityPlanner::from_measurements(&front, &db).unwrap();
        let mva = MvaBaseline::from_measurements(&front, &db).unwrap();
        assert!(
            planner.db_characterization().index_of_dispersion > 10.0,
            "I_db = {}",
            planner.db_characterization().index_of_dispersion
        );
        let n = 60;
        let a = planner.predict(n, 0.5).unwrap().throughput;
        let b = mva.predict(n, 0.5).unwrap().throughput;
        assert!(a < b, "burst-aware prediction {a} must be below MVA {b}");
    }

    #[test]
    fn sweep_is_monotone() {
        let planner = CapacityPlanner::from_measurements(&steady(0.5, 250), &bursty(250)).unwrap();
        let sweep = planner.predict_sweep(&[5, 15, 30], 0.5).unwrap();
        assert!(sweep
            .windows(2)
            .all(|w| w[1].throughput >= w[0].throughput - 1e-9));
    }

    #[test]
    fn mva_baseline_validation() {
        assert!(MvaBaseline::from_demands(0.0, 0.1).is_err());
        let b = MvaBaseline::from_demands(0.01, 0.005).unwrap();
        assert_eq!(b.front_demand(), 0.01);
        let p = b.predict(100, 0.5).unwrap();
        assert!(p.throughput <= 100.0 + 1e-9);
    }

    #[test]
    fn solver_strategies_agree() {
        // Direct, forced-sparse, and auto (on both sides of the threshold)
        // must produce the same prediction for a moderately bursty model.
        let front = steady(0.5, 250);
        let db = bursty(250);
        let mut options = PlannerOptions::default();
        let mut predictions = Vec::new();
        for solver in [
            SolverStrategy::Direct,
            SolverStrategy::Sparse,
            SolverStrategy::MatrixFree,
            SolverStrategy::Auto {
                sparse_above_states: 0,
            },
            SolverStrategy::default(),
        ] {
            options.solver = solver;
            let planner = CapacityPlanner::with_options(&front, &db, options).unwrap();
            assert_eq!(planner.solver_strategy(), solver);
            predictions.push(planner.predict(15, 0.5).unwrap().throughput);
        }
        for &x in &predictions[1..] {
            assert!(
                (x - predictions[0]).abs() / predictions[0] < 1e-7,
                "strategies disagree: {predictions:?}"
            );
        }
    }

    #[test]
    fn three_tier_planner_matches_mva_for_low_burstiness() {
        // Web + app + db, all steady: the MAP model degenerates toward the
        // product-form solution, so the three-tier planner and three-tier
        // MVA baseline nearly coincide.
        let web = steady(0.2, 250); // S_web = 4 ms
        let app = steady(0.5, 250); // S_app = 10 ms
        let db = steady(0.25, 250); // S_db = 5 ms
        let planner =
            CapacityPlanner::from_tier_measurements(&[&web, &app, &db], PlannerOptions::default())
                .unwrap();
        assert_eq!(planner.tier_count(), 3);
        assert!((planner.tier_characterizations()[0].mean_service_time - 0.004).abs() < 1e-9);
        // Scalar accessors point at the first/last tier.
        assert_eq!(
            planner.front_characterization().mean_service_time,
            planner.tier_characterizations()[0].mean_service_time
        );
        assert_eq!(
            planner.db_characterization().mean_service_time,
            planner.tier_characterizations()[2].mean_service_time
        );
        let mva = MvaBaseline::from_tier_measurements(&[&web, &app, &db]).unwrap();
        assert_eq!(mva.demands().len(), 3);
        for n in [5, 20, 50] {
            let a = planner.predict(n, 0.5).unwrap();
            let b = mva.predict(n, 0.5).unwrap();
            assert_eq!(a.utilization.len(), 3);
            assert!(
                (a.throughput - b.throughput).abs() / b.throughput < 0.08,
                "N={n}: planner {} vs mva {}",
                a.throughput,
                b.throughput
            );
        }
    }

    #[test]
    fn two_tier_wrappers_match_tier_vector_entry_points() {
        // The historical two-tier constructors are thin wrappers: same
        // predictions as the explicit tier-vector path.
        let front = steady(0.5, 250);
        let db = bursty(250);
        let a = CapacityPlanner::from_measurements(&front, &db).unwrap();
        let b = CapacityPlanner::from_tier_measurements(&[&front, &db], PlannerOptions::default())
            .unwrap();
        let pa = a.predict(20, 0.5).unwrap();
        let pb = b.predict(20, 0.5).unwrap();
        assert_eq!(pa.throughput, pb.throughput);
        assert_eq!(pa.utilization, pb.utilization);
        let ma = MvaBaseline::from_measurements(&front, &db).unwrap();
        let mb = MvaBaseline::from_tier_measurements(&[&front, &db]).unwrap();
        assert_eq!(ma, mb);
    }

    #[test]
    fn planner_records_floored_dispersion_instead_of_clamping() {
        // A deterministic tier measures I = 0; the fit succeeds at the
        // floor and the adjustment is visible in the diagnostics (the old
        // .max(0.51) clamp left no trace).
        let planner = CapacityPlanner::from_measurements(&steady(0.5, 250), &bursty(250)).unwrap();
        let front_fit = planner.front_fit();
        assert!(
            front_fit.floored_target_i().is_some(),
            "steady tier (I ~ 0) must record the floor adjustment"
        );
        assert!(
            planner.db_fit().floored_target_i().is_none(),
            "bursty tier must fit its measured I unmodified"
        );
    }

    #[test]
    fn empty_tier_lists_rejected() {
        assert!(
            CapacityPlanner::from_tier_characterizations(vec![], PlannerOptions::default())
                .is_err()
        );
        assert!(MvaBaseline::from_tier_measurements(&[]).is_err());
        assert!(MvaBaseline::from_demand_vector(vec![]).is_err());
    }

    #[test]
    fn characterizations_roundtrip_through_planner() {
        let front = steady(0.5, 250);
        let db = bursty(250);
        let p1 = CapacityPlanner::from_measurements(&front, &db).unwrap();
        let p2 = CapacityPlanner::from_characterizations(
            p1.front_characterization().clone(),
            p1.db_characterization().clone(),
            PlannerOptions::default(),
        )
        .unwrap();
        let a = p1.predict(20, 0.5).unwrap().throughput;
        let b = p2.predict(20, 0.5).unwrap().throughput;
        assert!((a - b).abs() / a < 1e-9);
    }
}
