use std::error::Error;
use std::fmt;

use burstcap_map::MapError;
use burstcap_qn::QnError;
use burstcap_stats::StatsError;

/// Errors produced by the capacity-planning pipeline.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum PlanError {
    /// A measurement series is malformed.
    InvalidMeasurements {
        /// Description of the problem.
        reason: String,
    },
    /// A statistics estimator failed (trace too short, degenerate input...).
    Estimation(StatsError),
    /// MAP(2) fitting failed.
    Fitting(MapError),
    /// The analytic model could not be solved.
    Solving(QnError),
    /// The replication harness was misconfigured (zero replications, zero
    /// workers, ...).
    InvalidExperiment {
        /// Description of the problem.
        reason: String,
    },
}

impl fmt::Display for PlanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlanError::InvalidMeasurements { reason } => {
                write!(f, "invalid measurements: {reason}")
            }
            PlanError::Estimation(e) => write!(f, "estimation failed: {e}"),
            PlanError::Fitting(e) => write!(f, "MAP fitting failed: {e}"),
            PlanError::Solving(e) => write!(f, "model solution failed: {e}"),
            PlanError::InvalidExperiment { reason } => {
                write!(f, "invalid experiment: {reason}")
            }
        }
    }
}

impl Error for PlanError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            PlanError::InvalidMeasurements { .. } | PlanError::InvalidExperiment { .. } => None,
            PlanError::Estimation(e) => Some(e),
            PlanError::Fitting(e) => Some(e),
            PlanError::Solving(e) => Some(e),
        }
    }
}

impl From<StatsError> for PlanError {
    fn from(e: StatsError) -> Self {
        PlanError::Estimation(e)
    }
}

impl From<MapError> for PlanError {
    fn from(e: MapError) -> Self {
        PlanError::Fitting(e)
    }
}

impl From<QnError> for PlanError {
    fn from(e: QnError) -> Self {
        PlanError::Solving(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sources_are_preserved() {
        let e = PlanError::from(StatsError::TraceTooShort {
            got: 1,
            needed: 100,
        });
        assert!(e.source().is_some());
        assert!(e.to_string().contains("estimation"));
    }

    #[test]
    fn error_traits() {
        fn check<T: Error + Send + Sync>() {}
        check::<PlanError>();
    }
}
