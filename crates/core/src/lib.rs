//! Burstiness-aware capacity planning for multi-tier applications.
//!
//! This crate is the end-to-end implementation of the methodology of
//! *"Burstiness in Multi-tier Applications: Symptoms, Causes, and New
//! Models"* (Mi, Casale, Cherkasova, Smirni — MIDDLEWARE 2008): predict the
//! throughput of a two-tier closed system from nothing but **coarse
//! monitoring measurements**, staying accurate even when service burstiness
//! causes the bottleneck to switch between tiers.
//!
//! The pipeline has three stages, one module each:
//!
//! 1. [`measurements`] — adapt per-window utilization samples (`sar`-style)
//!    and completion counts (HP Diagnostics-style) into
//!    [`measurements::TierMeasurements`];
//! 2. [`characterize`] — extract the paper's three service descriptors per
//!    tier: the **mean service demand** (utilization-law regression), the
//!    **index of dispersion** (the Figure 2 algorithm), and the **95th
//!    percentile** of service times (busy-period scaling);
//! 3. [`planner`] — fit a MAP(2) per tier (Section 4.1) and solve the closed
//!    MAP queueing network exactly for each target population, with a
//!    classical MVA baseline for comparison; [`report`] tabulates
//!    model-versus-measured accuracy.
//!
//! Validation runs go through [`experiment`]: R independent replications of
//! any scenario, fanned across scoped worker threads with per-replication
//! RNG streams (`burstcap_sim::seeds`) and aggregated into Student-t
//! confidence intervals instead of point estimates.
//!
//! # Example
//!
//! ```
//! use burstcap::measurements::TierMeasurements;
//! use burstcap::planner::CapacityPlanner;
//!
//! // Synthetic monitoring: a steady front tier and a steady database.
//! let front = TierMeasurements::new(5.0, vec![0.50; 200], vec![250; 200])?;
//! let db = TierMeasurements::new(5.0, vec![0.25; 200], vec![250; 200])?;
//! let planner = CapacityPlanner::from_measurements(&front, &db)?;
//! let prediction = planner.predict(50, 0.5)?;
//! assert!(prediction.throughput > 0.0);
//! # Ok::<(), burstcap::PlanError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
// Bare `.unwrap()` is banned in library targets; burstcap-lint's
// `panic-in-lib` is the lexical twin (it also covers expect/panic!, with
// justification markers), clippy the type-aware backstop. The test target
// compiles with the allow, so unit tests may unwrap freely.
#![deny(clippy::unwrap_used)]
#![cfg_attr(test, allow(clippy::unwrap_used))]

pub mod characterize;
mod error;
pub mod experiment;
pub mod measurements;
pub mod planner;
pub mod report;

pub use error::PlanError;
