//! Service-process characterization: the paper's three descriptors from
//! coarse measurements.
//!
//! For each tier the methodology needs exactly three numbers (Section 4.1):
//!
//! * the **mean service demand**, from utilization-law regression
//!   (`U_k * T ≈ S * n_k`);
//! * the **index of dispersion** `I`, from the Figure 2 counting-process
//!   algorithm over concatenated busy periods;
//! * the **95th percentile of service times**, from the busy-time p95 scaled
//!   by the median per-window completion count.
//!
//! [`characterize`] runs all three on a [`TierMeasurements`] series.

use serde::{Deserialize, Serialize};

use burstcap_stats::busy::ServicePercentileEstimator;
use burstcap_stats::dispersion::DispersionEstimator;
use burstcap_stats::regression::estimate_demand;

use crate::measurements::TierMeasurements;
use crate::PlanError;

/// Knobs of the characterization stage.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CharacterizeOptions {
    /// Stopping tolerance of the Figure 2 estimator. The paper's
    /// illustrative value is 0.2; a tighter default lets the `Y(t)` curve of
    /// strongly bursty processes climb closer to its asymptote when the
    /// trace is long enough.
    pub dispersion_tolerance: f64,
    /// Minimum windows per aggregation level (the paper's 100).
    pub min_windows: usize,
    /// Quantile to estimate (0.95 in the paper).
    pub quantile: f64,
}

impl Default for CharacterizeOptions {
    fn default() -> Self {
        CharacterizeOptions {
            dispersion_tolerance: 0.05,
            min_windows: 100,
            quantile: 0.95,
        }
    }
}

/// The three descriptors of a tier's service process, plus estimator
/// diagnostics.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServiceCharacterization {
    /// Mean service demand per completed request (seconds).
    pub mean_service_time: f64,
    /// Index of dispersion of the service process.
    pub index_of_dispersion: f64,
    /// Estimated 95th percentile of service times (seconds).
    pub p95_service_time: f64,
    /// Whether the Figure 2 stopping rule converged (`false` means the last
    /// aggregation level was returned best-effort).
    pub dispersion_converged: bool,
    /// Goodness of fit of the demand regression.
    pub regression_r_squared: f64,
}

/// Characterize one tier's service process from its monitoring series.
///
/// # Errors
/// Propagates estimator failures (trace too short for Figure 2, degenerate
/// utilization, no completions).
///
/// # Example
/// ```
/// use burstcap::characterize::{characterize, CharacterizeOptions};
/// use burstcap::measurements::TierMeasurements;
///
/// let m = TierMeasurements::new(5.0, vec![0.4; 150], vec![200; 150])?;
/// let c = characterize(&m, CharacterizeOptions::default())?;
/// assert!((c.mean_service_time - 0.01).abs() < 1e-9); // 2 s busy / 200 jobs
/// # Ok::<(), burstcap::PlanError>(())
/// ```
///
/// # Panics
///
/// Only if a justified internal invariant is violated (6 reachable
/// panic sites, e.g. `crates/stats/src/dispersion.rs:268`; `burstcap-lint report` lists them),
/// never for inputs this API accepts.
pub fn characterize(
    measurements: &TierMeasurements,
    options: CharacterizeOptions,
) -> Result<ServiceCharacterization, PlanError> {
    let demand = estimate_demand(
        measurements.utilization(),
        measurements.completions(),
        measurements.resolution(),
    )?;
    let dispersion = DispersionEstimator::new(measurements.resolution())
        .tolerance(options.dispersion_tolerance)
        .min_windows(options.min_windows)
        .estimate(measurements.utilization(), measurements.completions())?;
    let tail = ServicePercentileEstimator::new(measurements.resolution())
        .quantile(options.quantile)
        .estimate(measurements.utilization(), measurements.completions())?;

    Ok(ServiceCharacterization {
        mean_service_time: demand.mean_service_time,
        index_of_dispersion: dispersion.index_of_dispersion(),
        p95_service_time: tail.p95_service_time,
        dispersion_converged: dispersion.converged(),
        regression_r_squared: demand.r_squared,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn steady(resolution: f64, util: f64, n: u64, windows: usize) -> TierMeasurements {
        TierMeasurements::new(resolution, vec![util; windows], vec![n; windows]).unwrap()
    }

    #[test]
    fn steady_series_yields_consistent_descriptors() {
        // 0.5 busy-seconds per window, 50 completions: S = 10 ms.
        let m = steady(1.0, 0.5, 50, 400);
        let c = characterize(&m, CharacterizeOptions::default()).unwrap();
        assert!((c.mean_service_time - 0.01).abs() < 1e-9);
        // Deterministic counts: dispersion collapses to ~0.
        assert!(c.index_of_dispersion < 0.1);
        assert!(c.dispersion_converged);
        // Constant busy time and counts: p95(S) = B/n = 10 ms.
        assert!((c.p95_service_time - 0.01).abs() < 1e-9);
    }

    #[test]
    fn bursty_counts_raise_dispersion() {
        // Regime-switching completion counts at constant utilization.
        let mut util = Vec::new();
        let mut n = Vec::new();
        for block in 0..40 {
            for _ in 0..20 {
                util.push(0.8);
                n.push(if block % 2 == 0 { 10u64 } else { 90 });
            }
        }
        let m = TierMeasurements::new(5.0, util, n).unwrap();
        let c = characterize(&m, CharacterizeOptions::default()).unwrap();
        assert!(
            c.index_of_dispersion > 10.0,
            "I = {}",
            c.index_of_dispersion
        );
    }

    #[test]
    fn short_series_fails_cleanly() {
        let m = steady(1.0, 0.5, 10, 20);
        assert!(matches!(
            characterize(&m, CharacterizeOptions::default()),
            Err(PlanError::Estimation(_))
        ));
    }

    #[test]
    fn options_are_honored() {
        let m = steady(1.0, 0.5, 50, 400);
        let c = characterize(
            &m,
            CharacterizeOptions {
                quantile: 0.5,
                ..CharacterizeOptions::default()
            },
        )
        .unwrap();
        // Median of constant busy times equals the same scaled value.
        assert!((c.p95_service_time - 0.01).abs() < 1e-9);
    }
}
