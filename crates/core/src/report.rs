//! Accuracy reporting: model-versus-measured tables.
//!
//! The paper validates its model by tabulating predicted against measured
//! throughput across EB populations and mixes (Figures 10-12), quoting the
//! relative error on each bar. [`AccuracyReport`] reproduces that artifact.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::planner::Prediction;
use crate::PlanError;

/// One row: a population with its measured value and model predictions.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AccuracyRow {
    /// Population (EBs).
    pub population: usize,
    /// Measured throughput.
    pub measured: f64,
    /// Burstiness-aware model prediction.
    pub model: f64,
    /// MVA baseline prediction.
    pub mva: f64,
}

impl AccuracyRow {
    /// Relative error of the burst-aware model.
    pub fn model_error(&self) -> f64 {
        (self.model - self.measured).abs() / self.measured
    }

    /// Relative error of the MVA baseline.
    pub fn mva_error(&self) -> f64 {
        (self.mva - self.measured).abs() / self.measured
    }
}

/// A model-versus-measured accuracy table.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AccuracyReport {
    label: String,
    rows: Vec<AccuracyRow>,
}

impl AccuracyReport {
    /// Assemble a report from aligned series.
    ///
    /// # Errors
    /// Rejects mismatched lengths, empty input, and non-positive measured
    /// values.
    pub fn new(
        label: impl Into<String>,
        measured: &[(usize, f64)],
        model: &[Prediction],
        mva: &[Prediction],
    ) -> Result<Self, PlanError> {
        if measured.len() != model.len() || measured.len() != mva.len() {
            return Err(PlanError::InvalidMeasurements {
                reason: format!(
                    "series lengths differ: {} measured, {} model, {} mva",
                    measured.len(),
                    model.len(),
                    mva.len()
                ),
            });
        }
        if measured.is_empty() {
            return Err(PlanError::InvalidMeasurements {
                reason: "empty report".into(),
            });
        }
        let mut rows = Vec::with_capacity(measured.len());
        for ((pop, x), (m, v)) in measured.iter().zip(model.iter().zip(mva)) {
            if *x <= 0.0 {
                return Err(PlanError::InvalidMeasurements {
                    reason: format!("non-positive measured throughput at population {pop}"),
                });
            }
            if m.population != *pop || v.population != *pop {
                return Err(PlanError::InvalidMeasurements {
                    reason: format!(
                        "population mismatch at row {pop}: model {} / mva {}",
                        m.population, v.population
                    ),
                });
            }
            rows.push(AccuracyRow {
                population: *pop,
                measured: *x,
                model: m.throughput,
                mva: v.throughput,
            });
        }
        Ok(AccuracyReport {
            label: label.into(),
            rows,
        })
    }

    /// The report label (e.g. the mix name).
    pub fn label(&self) -> &str {
        &self.label
    }

    /// The rows, in input order.
    pub fn rows(&self) -> &[AccuracyRow] {
        &self.rows
    }

    /// Largest relative error of the burst-aware model across rows.
    pub fn max_model_error(&self) -> f64 {
        self.rows
            .iter()
            .map(AccuracyRow::model_error)
            .fold(0.0, f64::max)
    }

    /// Largest relative error of the MVA baseline across rows.
    pub fn max_mva_error(&self) -> f64 {
        self.rows
            .iter()
            .map(AccuracyRow::mva_error)
            .fold(0.0, f64::max)
    }

    /// Mean relative error of the burst-aware model.
    pub fn mean_model_error(&self) -> f64 {
        self.rows.iter().map(AccuracyRow::model_error).sum::<f64>() / self.rows.len() as f64
    }

    /// Mean relative error of the MVA baseline.
    pub fn mean_mva_error(&self) -> f64 {
        self.rows.iter().map(AccuracyRow::mva_error).sum::<f64>() / self.rows.len() as f64
    }
}

impl fmt::Display for AccuracyReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{}", self.label)?;
        writeln!(
            f,
            "{:>6} {:>12} {:>12} {:>8} {:>12} {:>8}",
            "EBs", "measured", "model", "err", "MVA", "err"
        )?;
        for r in &self.rows {
            writeln!(
                f,
                "{:>6} {:>12.1} {:>12.1} {:>7.1}% {:>12.1} {:>7.1}%",
                r.population,
                r.measured,
                r.model,
                r.model_error() * 100.0,
                r.mva,
                r.mva_error() * 100.0
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pred(population: usize, throughput: f64) -> Prediction {
        Prediction {
            population,
            throughput,
            utilization: vec![0.5, 0.5],
            utilization_front: 0.5,
            utilization_db: 0.5,
            response_time: 0.1,
        }
    }

    #[test]
    fn errors_are_computed() {
        let report = AccuracyReport::new(
            "browsing",
            &[(25, 100.0), (50, 150.0)],
            &[pred(25, 95.0), pred(50, 160.0)],
            &[pred(25, 130.0), pred(50, 150.0)],
        )
        .unwrap();
        assert!((report.rows()[0].model_error() - 0.05).abs() < 1e-12);
        assert!((report.rows()[0].mva_error() - 0.30).abs() < 1e-12);
        assert!((report.max_model_error() - 1.0 / 15.0).abs() < 1e-9);
        assert!((report.max_mva_error() - 0.30).abs() < 1e-12);
        assert!(report.mean_model_error() < report.mean_mva_error());
    }

    #[test]
    fn display_renders_rows() {
        let report =
            AccuracyReport::new("mix", &[(25, 100.0)], &[pred(25, 95.0)], &[pred(25, 130.0)])
                .unwrap();
        let text = report.to_string();
        assert!(text.contains("mix"));
        assert!(text.contains("25"));
        assert!(text.contains('%'));
    }

    #[test]
    fn validation_errors() {
        assert!(AccuracyReport::new("x", &[], &[], &[]).is_err());
        assert!(AccuracyReport::new("x", &[(25, 1.0)], &[], &[]).is_err());
        assert!(
            AccuracyReport::new("x", &[(25, 0.0)], &[pred(25, 1.0)], &[pred(25, 1.0)]).is_err()
        );
        assert!(
            AccuracyReport::new("x", &[(25, 1.0)], &[pred(30, 1.0)], &[pred(25, 1.0)]).is_err()
        );
    }
}
