//! Reporting artifacts: model-versus-measured tables and online-planning
//! ticks.
//!
//! The paper validates its model by tabulating predicted against measured
//! throughput across EB populations and mixes (Figures 10-12), quoting the
//! relative error on each bar. [`AccuracyReport`] reproduces that artifact.
//! [`OnlineReport`] is its continuous-planning sibling: one record per
//! replanning tick of the streaming pipeline (current per-tier descriptors,
//! detector state, and the refreshed prediction), emitted by
//! `burstcap_online::OnlinePlanner`.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::characterize::ServiceCharacterization;
use crate::planner::Prediction;
use crate::PlanError;

/// One row: a population with its measured value and model predictions.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AccuracyRow {
    /// Population (EBs).
    pub population: usize,
    /// Measured throughput.
    pub measured: f64,
    /// Burstiness-aware model prediction.
    pub model: f64,
    /// MVA baseline prediction.
    pub mva: f64,
}

impl AccuracyRow {
    /// Relative error of the burst-aware model.
    pub fn model_error(&self) -> f64 {
        (self.model - self.measured).abs() / self.measured
    }

    /// Relative error of the MVA baseline.
    pub fn mva_error(&self) -> f64 {
        (self.mva - self.measured).abs() / self.measured
    }
}

/// A model-versus-measured accuracy table.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AccuracyReport {
    label: String,
    rows: Vec<AccuracyRow>,
}

impl AccuracyReport {
    /// Assemble a report from aligned series.
    ///
    /// # Errors
    /// Rejects mismatched lengths, empty input, and non-positive measured
    /// values.
    pub fn new(
        label: impl Into<String>,
        measured: &[(usize, f64)],
        model: &[Prediction],
        mva: &[Prediction],
    ) -> Result<Self, PlanError> {
        if measured.len() != model.len() || measured.len() != mva.len() {
            return Err(PlanError::InvalidMeasurements {
                reason: format!(
                    "series lengths differ: {} measured, {} model, {} mva",
                    measured.len(),
                    model.len(),
                    mva.len()
                ),
            });
        }
        if measured.is_empty() {
            return Err(PlanError::InvalidMeasurements {
                reason: "empty report".into(),
            });
        }
        let mut rows = Vec::with_capacity(measured.len());
        for ((pop, x), (m, v)) in measured.iter().zip(model.iter().zip(mva)) {
            if *x <= 0.0 {
                return Err(PlanError::InvalidMeasurements {
                    reason: format!("non-positive measured throughput at population {pop}"),
                });
            }
            if m.population != *pop || v.population != *pop {
                return Err(PlanError::InvalidMeasurements {
                    reason: format!(
                        "population mismatch at row {pop}: model {} / mva {}",
                        m.population, v.population
                    ),
                });
            }
            rows.push(AccuracyRow {
                population: *pop,
                measured: *x,
                model: m.throughput,
                mva: v.throughput,
            });
        }
        Ok(AccuracyReport {
            label: label.into(),
            rows,
        })
    }

    /// The report label (e.g. the mix name).
    pub fn label(&self) -> &str {
        &self.label
    }

    /// The rows, in input order.
    pub fn rows(&self) -> &[AccuracyRow] {
        &self.rows
    }

    /// Largest relative error of the burst-aware model across rows.
    pub fn max_model_error(&self) -> f64 {
        self.rows
            .iter()
            .map(AccuracyRow::model_error)
            .fold(0.0, f64::max)
    }

    /// Largest relative error of the MVA baseline across rows.
    pub fn max_mva_error(&self) -> f64 {
        self.rows
            .iter()
            .map(AccuracyRow::mva_error)
            .fold(0.0, f64::max)
    }

    /// Mean relative error of the burst-aware model.
    pub fn mean_model_error(&self) -> f64 {
        self.rows.iter().map(AccuracyRow::model_error).sum::<f64>() / self.rows.len() as f64
    }

    /// Mean relative error of the MVA baseline.
    pub fn mean_mva_error(&self) -> f64 {
        self.rows.iter().map(AccuracyRow::mva_error).sum::<f64>() / self.rows.len() as f64
    }
}

/// Per-tier slice of an [`OnlineReport`]: the streaming descriptors at one
/// replanning tick and what the planner did about them.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OnlineTierStatus {
    /// Current streaming characterization of the tier.
    pub characterization: ServiceCharacterization,
    /// Largest relative change of the three descriptors against the tier's
    /// last fitted characterization (0 for the first fit).
    pub drift: f64,
    /// Whether the tier's regime-change detector is in alarm at this tick.
    pub alarm: bool,
}

/// One replanning tick of the online planner: emitted by
/// `burstcap_online::OnlinePlanner` every time it re-evaluates the model
/// against the stream.
///
/// Serialization-ready like every pipeline artifact (the `Serialize` /
/// `Deserialize` derives); `burstcap-bench`'s deterministic JSON writer
/// renders it in `BENCH_online.json`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OnlineReport {
    /// 1-based index of the monitoring window that triggered this tick.
    pub window: usize,
    /// Stream time at the tick (window index × resolution, seconds).
    pub elapsed_seconds: f64,
    /// Per-tier descriptors and detector state, in tandem order.
    pub tiers: Vec<OnlineTierStatus>,
    /// Whether any tier's regime-change detector fired at this tick.
    pub regime_change: bool,
    /// Whether this tick re-fitted the MAP(2)s and re-solved the model.
    pub refitted: bool,
    /// Whether the solve was warm-started from the previous stationary
    /// vector (`false` for cold solves and for ticks that kept the cached
    /// prediction).
    pub warm_started: bool,
    /// The current throughput prediction (re-solved at this tick if
    /// `refitted`, otherwise the cached one).
    pub prediction: Prediction,
}

impl fmt::Display for OnlineReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "t={:>7.0}s window {:>5}: X = {:>6.1}/s",
            self.elapsed_seconds, self.window, self.prediction.throughput
        )?;
        for (i, tier) in self.tiers.iter().enumerate() {
            write!(
                f,
                "  tier{i} S={:.1}ms I={:.1}",
                tier.characterization.mean_service_time * 1e3,
                tier.characterization.index_of_dispersion
            )?;
        }
        if self.regime_change {
            write!(f, "  [regime change]")?;
        }
        if self.refitted {
            write!(
                f,
                "  [refit, {} solve]",
                if self.warm_started { "warm" } else { "cold" }
            )?;
        }
        Ok(())
    }
}

impl fmt::Display for AccuracyReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{}", self.label)?;
        writeln!(
            f,
            "{:>6} {:>12} {:>12} {:>8} {:>12} {:>8}",
            "EBs", "measured", "model", "err", "MVA", "err"
        )?;
        for r in &self.rows {
            writeln!(
                f,
                "{:>6} {:>12.1} {:>12.1} {:>7.1}% {:>12.1} {:>7.1}%",
                r.population,
                r.measured,
                r.model,
                r.model_error() * 100.0,
                r.mva,
                r.mva_error() * 100.0
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pred(population: usize, throughput: f64) -> Prediction {
        Prediction {
            population,
            throughput,
            utilization: vec![0.5, 0.5],
            utilization_front: 0.5,
            utilization_db: 0.5,
            response_time: 0.1,
        }
    }

    #[test]
    fn errors_are_computed() {
        let report = AccuracyReport::new(
            "browsing",
            &[(25, 100.0), (50, 150.0)],
            &[pred(25, 95.0), pred(50, 160.0)],
            &[pred(25, 130.0), pred(50, 150.0)],
        )
        .unwrap();
        assert!((report.rows()[0].model_error() - 0.05).abs() < 1e-12);
        assert!((report.rows()[0].mva_error() - 0.30).abs() < 1e-12);
        assert!((report.max_model_error() - 1.0 / 15.0).abs() < 1e-9);
        assert!((report.max_mva_error() - 0.30).abs() < 1e-12);
        assert!(report.mean_model_error() < report.mean_mva_error());
    }

    #[test]
    fn display_renders_rows() {
        let report =
            AccuracyReport::new("mix", &[(25, 100.0)], &[pred(25, 95.0)], &[pred(25, 130.0)])
                .unwrap();
        let text = report.to_string();
        assert!(text.contains("mix"));
        assert!(text.contains("25"));
        assert!(text.contains('%'));
    }

    #[test]
    fn online_report_display_flags_refits() {
        let c = ServiceCharacterization {
            mean_service_time: 0.01,
            index_of_dispersion: 8.0,
            p95_service_time: 0.03,
            dispersion_converged: true,
            regression_r_squared: 0.99,
        };
        let report = OnlineReport {
            window: 240,
            elapsed_seconds: 1200.0,
            tiers: vec![OnlineTierStatus {
                characterization: c,
                drift: 0.3,
                alarm: true,
            }],
            regime_change: true,
            refitted: true,
            warm_started: true,
            prediction: pred(60, 88.5),
        };
        let text = report.to_string();
        assert!(text.contains("regime change"));
        assert!(text.contains("warm"));
        assert!(text.contains("240"));
        let quiet = OnlineReport {
            regime_change: false,
            refitted: false,
            warm_started: false,
            ..report
        };
        let text = quiet.to_string();
        assert!(!text.contains("regime change"));
        assert!(!text.contains("refit"));
    }

    #[test]
    fn validation_errors() {
        assert!(AccuracyReport::new("x", &[], &[], &[]).is_err());
        assert!(AccuracyReport::new("x", &[(25, 1.0)], &[], &[]).is_err());
        assert!(
            AccuracyReport::new("x", &[(25, 0.0)], &[pred(25, 1.0)], &[pred(25, 1.0)]).is_err()
        );
        assert!(
            AccuracyReport::new("x", &[(25, 1.0)], &[pred(30, 1.0)], &[pred(25, 1.0)]).is_err()
        );
    }
}
