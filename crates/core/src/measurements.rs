//! Monitoring-data schema: what commodity tools actually give you.
//!
//! The methodology deliberately consumes only two per-tier series, both
//! cheap and non-intrusive to collect (paper, Sections 2.2 and 3.1):
//! per-window CPU utilization (`sar`) and per-window completed request
//! counts (HP Diagnostics). [`TierMeasurements`] is that pair plus its
//! window length.

use serde::{Deserialize, Serialize};

use crate::PlanError;

/// Paired `(U_k, n_k)` monitoring series for one tier.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TierMeasurements {
    resolution: f64,
    utilization: Vec<f64>,
    completions: Vec<u64>,
}

impl TierMeasurements {
    /// Create a measurement series.
    ///
    /// # Errors
    /// Rejects non-positive resolutions, mismatched lengths, utilizations
    /// outside `[0, 1]`, and empty series.
    pub fn new(
        resolution: f64,
        utilization: Vec<f64>,
        completions: Vec<u64>,
    ) -> Result<Self, PlanError> {
        if resolution <= 0.0 || !resolution.is_finite() {
            return Err(PlanError::InvalidMeasurements {
                reason: format!("resolution must be positive, got {resolution}"),
            });
        }
        if utilization.len() != completions.len() {
            return Err(PlanError::InvalidMeasurements {
                reason: format!(
                    "series length mismatch: {} utilization vs {} completion windows",
                    utilization.len(),
                    completions.len()
                ),
            });
        }
        if utilization.is_empty() {
            return Err(PlanError::InvalidMeasurements {
                reason: "empty series".into(),
            });
        }
        if let Some(bad) = utilization
            .iter()
            .find(|u| !(0.0..=1.0).contains(*u) || u.is_nan())
        {
            return Err(PlanError::InvalidMeasurements {
                reason: format!("utilization sample {bad} outside [0, 1]"),
            });
        }
        Ok(TierMeasurements {
            resolution,
            utilization,
            completions,
        })
    }

    /// Window length in seconds.
    pub fn resolution(&self) -> f64 {
        self.resolution
    }

    /// Utilization samples.
    pub fn utilization(&self) -> &[f64] {
        &self.utilization
    }

    /// Completion counts.
    pub fn completions(&self) -> &[u64] {
        &self.completions
    }

    /// Number of windows.
    pub fn len(&self) -> usize {
        self.utilization.len()
    }

    /// Whether the series is empty (never true after construction).
    pub fn is_empty(&self) -> bool {
        self.utilization.is_empty()
    }

    /// Mean utilization over the series.
    pub fn mean_utilization(&self) -> f64 {
        self.utilization.iter().sum::<f64>() / self.utilization.len() as f64
    }

    /// Total completions over the series.
    pub fn total_completions(&self) -> u64 {
        self.completions.iter().sum()
    }

    /// Observed throughput (completions per second).
    pub fn throughput(&self) -> f64 {
        self.total_completions() as f64 / (self.resolution * self.len() as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn valid_series_accepted() {
        let m = TierMeasurements::new(5.0, vec![0.5, 0.6], vec![10, 12]).unwrap();
        assert_eq!(m.len(), 2);
        assert!((m.mean_utilization() - 0.55).abs() < 1e-12);
        assert_eq!(m.total_completions(), 22);
        assert!((m.throughput() - 2.2).abs() < 1e-12);
        assert!(!m.is_empty());
    }

    #[test]
    fn invalid_series_rejected() {
        assert!(TierMeasurements::new(0.0, vec![0.5], vec![1]).is_err());
        assert!(TierMeasurements::new(5.0, vec![0.5], vec![1, 2]).is_err());
        assert!(TierMeasurements::new(5.0, vec![], vec![]).is_err());
        assert!(TierMeasurements::new(5.0, vec![1.5], vec![1]).is_err());
    }
}
