//! The multi-replication experiment harness.
//!
//! Every validation in the paper compares a model against a *single*
//! simulation run — a point estimate. This module turns any scenario into
//! R independent replications with confidence intervals:
//!
//! * [`Replications`] — the execution plan: how many replications, which
//!   master seed and component stream (see `burstcap_sim::seeds`), and how
//!   many `std::thread::scope` workers to fan across;
//! * [`Experiment`] — [`Replications`] plus a confidence level, producing
//!   an [`ExperimentResult`] whose per-metric aggregates are Student-t
//!   intervals ([`burstcap_stats::ci`]);
//! * [`Experiment::run_until`] — the relative-precision sequential
//!   stopping rule: keep doubling the replication count until the CI
//!   half-width is below a target fraction of the point estimate.
//!
//! # Determinism contract
//!
//! Replication `i` is driven entirely by the seed
//! `seeds::derive(master_seed, stream, i)`, which depends on nothing but
//! the plan — not on worker count, scheduling, or which replications run
//! alongside it. Results are collected **in replication order** before any
//! aggregation, so a parallel run and a serial fold over the same plan
//! produce bit-identical output lists and therefore bit-identical
//! aggregate statistics. Growing a plan preserves its prefix: replications
//! `0..r` of an `r' > r` plan equal the full output of the `r` plan.
//!
//! # Example
//!
//! ```
//! use burstcap::experiment::Experiment;
//! use burstcap_sim::queues::MTrace1;
//!
//! // Five replications of a small M/M/1-like queue, two workers.
//! let queue = MTrace1::new(0.5, vec![1.0; 2_000])?;
//! let result = Experiment::new(5)?
//!     .master_seed(7)
//!     .workers(2)
//!     .run(|rep| queue.run(rep.seed))?;
//! let ci = result.metric(|r| r.response_time_mean())?;
//! assert_eq!(ci.count, 5);
//! assert!(ci.contains(ci.mean) && ci.half_width > 0.0);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

use std::ops::Range;

use burstcap_obs::Trace;
use burstcap_sim::seeds;
use burstcap_stats::ci::{mean_ci, ConfidenceInterval, RelativePrecision};

use crate::PlanError;

/// One replication of a scenario: its index in the plan and the derived
/// RNG seed that fully determines it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Replication {
    /// Position in the replication plan (0-based).
    pub index: u64,
    /// Seed of this replication's RNG stream
    /// (`seeds::derive(master, stream, index)`).
    pub seed: u64,
}

/// An execution plan for R independent replications.
///
/// # Example
///
/// ```
/// use burstcap::experiment::Replications;
///
/// let plan = Replications::new(4)?.master_seed(11).workers(2);
/// // The plan alone determines every replication seed.
/// let seeds = plan.seeds();
/// assert_eq!(seeds.len(), 4);
/// // Fan a trivial scenario out and fold it back in order.
/// let squares: Vec<u64> = plan.run(|rep| Ok::<_, std::convert::Infallible>(rep.index * rep.index))?;
/// assert_eq!(squares, vec![0, 1, 4, 9]);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Replications {
    count: usize,
    master_seed: u64,
    stream: u64,
    workers: usize,
}

impl Replications {
    /// Plan `count` replications (serial, master seed 0, the generic
    /// experiment stream).
    ///
    /// # Errors
    /// Rejects an empty plan.
    pub fn new(count: usize) -> Result<Self, PlanError> {
        if count == 0 {
            return Err(PlanError::InvalidExperiment {
                reason: "need at least one replication".into(),
            });
        }
        Ok(Replications {
            count,
            master_seed: 0,
            stream: seeds::EXPERIMENT_STREAM,
            workers: 1,
        })
    }

    /// Set the master seed all replication streams derive from.
    pub fn master_seed(mut self, seed: u64) -> Self {
        self.master_seed = seed;
        self
    }

    /// Set the component stream tag (defaults to
    /// `seeds::EXPERIMENT_STREAM`; use a component tag such as
    /// `seeds::CLOSED_MAP_NETWORK_STREAM` when replicating that component
    /// directly).
    pub fn stream(mut self, stream: u64) -> Self {
        self.stream = stream;
        self
    }

    /// Set the number of `std::thread::scope` workers (0 is treated as 1;
    /// 1 means a serial fold on the calling thread).
    pub fn workers(mut self, workers: usize) -> Self {
        self.workers = workers.max(1);
        self
    }

    /// Number of planned replications.
    pub fn count(&self) -> usize {
        self.count
    }

    /// Configured worker count.
    pub fn worker_count(&self) -> usize {
        self.workers
    }

    /// The derived seed of replication `index` under this plan.
    pub fn seed_of(&self, index: u64) -> u64 {
        seeds::derive(self.master_seed, self.stream, index)
    }

    /// All replication seeds, in replication order.
    pub fn seeds(&self) -> Vec<u64> {
        (0..self.count as u64).map(|i| self.seed_of(i)).collect()
    }

    /// Execute the scenario once per replication and return the outputs in
    /// replication order.
    ///
    /// With one worker this is a serial fold on the calling thread; with
    /// more, replications are striped across scoped threads. Either way
    /// every replication runs (no short-circuit), outputs are re-ordered
    /// by index before returning, and a failure reports the error of the
    /// *lowest-indexed* failing replication — so the outcome is a pure
    /// function of the plan, never of scheduling.
    ///
    /// # Errors
    /// Propagates the lowest-indexed scenario error.
    ///
    /// # Panics
    ///
    /// Only if a justified internal invariant is violated (2 reachable
    /// panic sites, e.g. `crates/core/src/experiment.rs:260`; `burstcap-lint report` lists them),
    /// never for inputs this API accepts.
    pub fn run<T, E, F>(&self, scenario: F) -> Result<Vec<T>, E>
    where
        F: Fn(Replication) -> Result<T, E> + Sync,
        T: Send,
        E: Send,
    {
        self.run_traced(scenario, &Trace::noop())
    }

    /// [`Replications::run`] under an observability trace: the whole fold
    /// runs inside an `experiment.run` span, and each replication gets an
    /// `experiment.replication` span carrying its index and derived seed.
    ///
    /// Replication spans are emitted serially *after* the (possibly
    /// parallel) fold, in replication order — the recorded trace is a pure
    /// function of the plan, never of worker count or scheduling. The
    /// worker count appears only as a volatile `experiment.workers` event,
    /// which the deterministic export excludes.
    ///
    /// # Errors
    /// Propagates the lowest-indexed scenario error.
    ///
    /// # Panics
    ///
    /// Only if a justified internal invariant is violated (2 reachable
    /// panic sites, e.g. `crates/core/src/experiment.rs:260`; `burstcap-lint report` lists them),
    /// never for inputs this API accepts.
    pub fn run_traced<T, E, F>(&self, scenario: F, trace: &Trace) -> Result<Vec<T>, E>
    where
        F: Fn(Replication) -> Result<T, E> + Sync,
        T: Send,
        E: Send,
    {
        let _span = trace.span_with(
            "experiment.run",
            vec![
                ("replications", self.count.into()),
                ("master_seed", self.master_seed.into()),
                ("stream", self.stream.into()),
            ],
        );
        trace.volatile_event("experiment.workers", vec![("workers", self.workers.into())]);
        let outputs = self.run_range(0..self.count as u64, &scenario)?;
        if trace.is_enabled() {
            for index in 0..self.count as u64 {
                let _rep = trace.span_with(
                    "experiment.replication",
                    vec![
                        ("index", index.into()),
                        ("seed", self.seed_of(index).into()),
                    ],
                );
            }
            trace.add("experiment.replications", self.count as u64);
        }
        Ok(outputs)
    }

    /// Execute replications `range` of the plan (used by the sequential
    /// stopping rule to extend a prefix without re-running it).
    fn run_range<T, E, F>(&self, range: Range<u64>, scenario: &F) -> Result<Vec<T>, E>
    where
        F: Fn(Replication) -> Result<T, E> + Sync,
        T: Send,
        E: Send,
    {
        let replication = |index: u64| Replication {
            index,
            seed: self.seed_of(index),
        };
        let collect = |results: Vec<Result<T, E>>| -> Result<Vec<T>, E> {
            // First error by replication index, not by completion order.
            results.into_iter().collect()
        };
        let span = (range.end - range.start) as usize;
        if self.workers == 1 || span <= 1 {
            return collect(range.map(|i| scenario(replication(i))).collect());
        }
        let workers = self.workers.min(span);
        let indices: Vec<u64> = range.collect();
        let striped: Vec<Vec<(usize, Result<T, E>)>> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|w| {
                    let indices = &indices;
                    let scenario = &scenario;
                    scope.spawn(move || {
                        // Worker w takes every workers-th replication.
                        indices
                            .iter()
                            .enumerate()
                            .skip(w)
                            .step_by(workers)
                            .map(|(slot, &i)| (slot, scenario(replication(i))))
                            .collect()
                    })
                })
                .collect();
            handles
                .into_iter()
                // burstcap-lint: allow(panic-in-lib) — a panicked worker is re-raised, not masked; there is no partial result to recover
                .map(|h| h.join().expect("replication worker must not panic"))
                .collect()
        });
        let mut slots: Vec<Option<Result<T, E>>> = Vec::new();
        slots.resize_with(indices.len(), || None);
        for (slot, result) in striped.into_iter().flatten() {
            slots[slot] = Some(result);
        }
        collect(
            slots
                .into_iter()
                // burstcap-lint: allow(panic-in-lib) — the dispatch loop writes every slot exactly once before collection
                .map(|s| s.expect("every replication slot is filled"))
                .collect(),
        )
    }
}

/// A replication plan with a confidence level: the user-facing entry point
/// of the harness.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Experiment {
    plan: Replications,
    confidence: f64,
}

impl Experiment {
    /// Plan `replications` replications at 95% confidence (serial; use the
    /// builders to change seed, stream, workers, or level).
    ///
    /// # Errors
    /// Rejects an empty plan.
    pub fn new(replications: usize) -> Result<Self, PlanError> {
        Ok(Experiment {
            plan: Replications::new(replications)?,
            confidence: 0.95,
        })
    }

    /// Set the master seed (see [`Replications::master_seed`]).
    pub fn master_seed(mut self, seed: u64) -> Self {
        self.plan = self.plan.master_seed(seed);
        self
    }

    /// Set the component stream tag (see [`Replications::stream`]).
    pub fn stream(mut self, stream: u64) -> Self {
        self.plan = self.plan.stream(stream);
        self
    }

    /// Set the worker count (see [`Replications::workers`]).
    pub fn workers(mut self, workers: usize) -> Self {
        self.plan = self.plan.workers(workers);
        self
    }

    /// Set the confidence level of the aggregate intervals.
    ///
    /// # Errors
    /// Rejects levels outside `(0, 1)`.
    pub fn confidence(mut self, level: f64) -> Result<Self, PlanError> {
        if !(0.0 < level && level < 1.0) {
            return Err(PlanError::InvalidExperiment {
                reason: format!("confidence level must lie in (0, 1), got {level}"),
            });
        }
        self.confidence = level;
        Ok(self)
    }

    /// The underlying replication plan.
    pub fn plan(&self) -> &Replications {
        &self.plan
    }

    /// Run every replication of the plan.
    ///
    /// # Errors
    /// Propagates the lowest-indexed scenario error.
    ///
    /// # Panics
    ///
    /// Only if a justified internal invariant is violated (4 reachable
    /// panic sites, e.g. `crates/core/src/experiment.rs:260`; `burstcap-lint report` lists them),
    /// never for inputs this API accepts.
    pub fn run<T, E, F>(&self, scenario: F) -> Result<ExperimentResult<T>, E>
    where
        F: Fn(Replication) -> Result<T, E> + Sync,
        T: Send,
        E: Send,
    {
        Ok(ExperimentResult {
            outputs: self.plan.run(scenario)?,
            confidence: self.confidence,
        })
    }

    /// [`Experiment::run`] under an observability trace (see
    /// [`Replications::run_traced`] for the span layout and the
    /// determinism contract of the recorded events).
    ///
    /// # Errors
    /// Propagates the lowest-indexed scenario error.
    ///
    /// # Panics
    ///
    /// Only if a justified internal invariant is violated (2 reachable
    /// panic sites, e.g. `crates/core/src/experiment.rs:260`; `burstcap-lint report` lists them),
    /// never for inputs this API accepts.
    pub fn run_traced<T, E, F>(&self, scenario: F, trace: &Trace) -> Result<ExperimentResult<T>, E>
    where
        F: Fn(Replication) -> Result<T, E> + Sync,
        T: Send,
        E: Send,
    {
        Ok(ExperimentResult {
            outputs: self.plan.run_traced(scenario, trace)?,
            confidence: self.confidence,
        })
    }

    /// Run with the relative-precision stopping rule: start from the
    /// planned count (at least 2 — one replication has no interval),
    /// check the CI of `metric`, and double the replication count until
    /// either `rule` is satisfied or `max_replications` is reached.
    /// Already-computed replications are never re-run (prefix preservation,
    /// see the module docs), so the total work is the final count.
    ///
    /// # Errors
    /// Propagates the lowest-indexed scenario error of the failing batch.
    ///
    /// # Panics
    ///
    /// Only if a justified internal invariant is violated (3 reachable
    /// panic sites, e.g. `crates/core/src/experiment.rs:260`; `burstcap-lint report` lists them),
    /// never for inputs this API accepts.
    pub fn run_until<T, E, F>(
        &self,
        rule: RelativePrecision,
        max_replications: usize,
        metric: impl Fn(&T) -> f64,
        scenario: F,
    ) -> Result<ExperimentResult<T>, E>
    where
        F: Fn(Replication) -> Result<T, E> + Sync,
        T: Send,
        E: Send,
    {
        let mut target = self.plan.count.max(2).min(max_replications.max(2));
        let mut outputs: Vec<T> = Vec::new();
        loop {
            let range = outputs.len() as u64..target as u64;
            outputs.extend(self.plan.run_range(range, &scenario)?);
            let values: Vec<f64> = outputs.iter().map(&metric).collect();
            let ci = mean_ci(&values, self.confidence)
                // burstcap-lint: allow(panic-in-lib) — mean_ci only errors on fewer than two samples; the schedule starts at two replications
                .expect("two or more replications always have an interval");
            if rule.satisfied_by(&ci) || target >= max_replications {
                return Ok(ExperimentResult {
                    outputs,
                    confidence: self.confidence,
                });
            }
            target = (target * 2).min(max_replications);
        }
    }
}

/// The outputs of an experiment, ready for CI-bearing aggregation.
#[derive(Debug, Clone, PartialEq)]
pub struct ExperimentResult<T> {
    outputs: Vec<T>,
    confidence: f64,
}

impl<T> ExperimentResult<T> {
    /// Per-replication outputs, in replication order.
    pub fn outputs(&self) -> &[T] {
        &self.outputs
    }

    /// Number of replications that ran.
    pub fn replications(&self) -> usize {
        self.outputs.len()
    }

    /// The confidence level aggregates are computed at.
    pub fn confidence(&self) -> f64 {
        self.confidence
    }

    /// Student-t confidence interval of a scalar metric across
    /// replications.
    ///
    /// # Errors
    /// Fails with fewer than two replications (no dispersion information —
    /// the same degeneracy the single-run validations this harness
    /// replaces could not even express).
    pub fn metric(&self, metric: impl Fn(&T) -> f64) -> Result<ConfidenceInterval, PlanError> {
        let values: Vec<f64> = self.outputs.iter().map(metric).collect();
        mean_ci(&values, self.confidence).map_err(PlanError::from)
    }

    /// Consume the result, yielding the raw outputs.
    pub fn into_outputs(self) -> Vec<T> {
        self.outputs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use burstcap_map::Map2;
    use burstcap_sim::queues::{ClosedMapNetwork, ClosedRunResult, MTrace1};
    use burstcap_sim::SimError;

    fn toy_network() -> ClosedMapNetwork {
        let front = Map2::poisson(1.0 / 0.02).unwrap();
        let db = Map2::poisson(1.0 / 0.03).unwrap();
        ClosedMapNetwork::new(3, 0.45, front, db).unwrap()
    }

    fn run_net(net: &ClosedMapNetwork, rep: Replication) -> Result<ClosedRunResult, SimError> {
        net.run(150.0, 15.0, rep.seed)
    }

    #[test]
    fn plan_validation() {
        assert!(Replications::new(0).is_err());
        assert!(Experiment::new(0).is_err());
        assert!(Experiment::new(2).unwrap().confidence(1.0).is_err());
        assert!(Experiment::new(2).unwrap().confidence(0.0).is_err());
        let plan = Replications::new(3).unwrap().workers(0);
        assert_eq!(plan.worker_count(), 1, "0 workers clamps to serial");
    }

    #[test]
    fn seeds_depend_only_on_the_plan() {
        let a = Replications::new(4).unwrap().master_seed(9);
        let b = Replications::new(8).unwrap().master_seed(9).workers(3);
        // Prefix preservation: the longer plan starts with the same seeds.
        assert_eq!(a.seeds(), b.seeds()[..4].to_vec());
        // Distinct masters and streams give distinct seed lists.
        let c = Replications::new(4).unwrap().master_seed(10);
        assert_ne!(a.seeds(), c.seeds());
        let d = Replications::new(4)
            .unwrap()
            .master_seed(9)
            .stream(burstcap_sim::seeds::TESTBED_STREAM);
        assert_ne!(a.seeds(), d.seeds());
    }

    #[test]
    fn parallel_fold_is_bit_identical_to_serial() {
        // The determinism contract of the whole harness: same plan, any
        // worker count, bit-identical ordered outputs and aggregates.
        let net = toy_network();
        let serial = Replications::new(6)
            .unwrap()
            .master_seed(21)
            .run(|rep| run_net(&net, rep))
            .unwrap();
        for workers in [2, 3, 4, 8] {
            let parallel = Replications::new(6)
                .unwrap()
                .master_seed(21)
                .workers(workers)
                .run(|rep| run_net(&net, rep))
                .unwrap();
            assert_eq!(serial.len(), parallel.len());
            for (s, p) in serial.iter().zip(&parallel) {
                assert_eq!(s.throughput.to_bits(), p.throughput.to_bits());
                assert_eq!(s.utilization_db.to_bits(), p.utilization_db.to_bits());
                assert_eq!(s.mean_jobs_front.to_bits(), p.mean_jobs_front.to_bits());
            }
        }
    }

    #[test]
    fn traced_run_is_bit_identical_across_worker_counts() {
        // The observability contract on top of the determinism contract:
        // the deterministic trace export must not depend on worker count.
        use burstcap_obs::Recorder;

        let net = toy_network();
        let trace_of = |workers: usize| {
            let recorder = Recorder::new();
            Replications::new(5)
                .unwrap()
                .master_seed(33)
                .workers(workers)
                .run_traced(|rep| run_net(&net, rep), &recorder.trace())
                .unwrap();
            recorder.deterministic_json()
        };
        let serial = trace_of(1);
        assert!(serial.contains("experiment.run"));
        assert!(serial.contains("experiment.replication"));
        assert!(
            !serial.contains("experiment.workers"),
            "worker count is volatile and must not reach the deterministic export"
        );
        for workers in [2, 3, 8] {
            assert_eq!(serial, trace_of(workers));
        }
    }

    #[test]
    fn errors_surface_by_lowest_replication_index() {
        // Replications 1 and 3 fail; parallel scheduling must still report
        // replication 1's error.
        let plan = Replications::new(5).unwrap().workers(4);
        let err = plan
            .run(|rep| {
                if rep.index % 2 == 1 {
                    Err(format!("replication {} failed", rep.index))
                } else {
                    Ok(rep.index)
                }
            })
            .unwrap_err();
        assert_eq!(err, "replication 1 failed");
    }

    #[test]
    fn experiment_metric_carries_a_real_interval() {
        let net = toy_network();
        let result = Experiment::new(5)
            .unwrap()
            .master_seed(3)
            .workers(2)
            .run(|rep| run_net(&net, rep))
            .unwrap();
        let ci = result.metric(|r| r.throughput).unwrap();
        assert_eq!(ci.count, 5);
        assert!(ci.half_width > 0.0, "independent replications must vary");
        assert!(ci.contains(ci.mean));
        // The interval sits near the known light-load throughput (the
        // asymptotic bound N/(Z + demands) = 6; finite-horizon noise allows
        // a small overshoot).
        let expected = 3.0 / (0.45 + 0.02 + 0.03);
        assert!(
            (ci.mean - expected).abs() / expected < 0.1,
            "X CI mean {} far from light-load value {expected}",
            ci.mean
        );
    }

    #[test]
    fn single_replication_has_no_interval() {
        let result = Experiment::new(1)
            .unwrap()
            .run(|rep| Ok::<_, SimError>(rep.index as f64))
            .unwrap();
        assert!(matches!(
            result.metric(|&x| x),
            Err(PlanError::Estimation(_))
        ));
    }

    #[test]
    fn run_until_stops_at_precision_and_preserves_prefix() {
        // A low-noise scenario: the rule triggers at the initial count.
        let exp = Experiment::new(2).unwrap().master_seed(5);
        let rule = RelativePrecision::new(0.5).unwrap();
        let queue = MTrace1::new(0.5, vec![1.0; 4_000]).unwrap();
        let result = exp
            .run_until(
                rule,
                16,
                |r: &burstcap_sim::queues::MTrace1Result| r.response_time_mean(),
                |rep| queue.run(rep.seed),
            )
            .unwrap();
        assert!(result.replications() >= 2);
        assert!(result.replications() <= 16);
        // The sequential run's prefix equals a plain run of the same size.
        let plain = Experiment::new(result.replications())
            .unwrap()
            .master_seed(5)
            .run(|rep| queue.run(rep.seed))
            .unwrap();
        for (a, b) in result.outputs().iter().zip(plain.outputs()) {
            assert_eq!(
                a.response_time_mean().to_bits(),
                b.response_time_mean().to_bits()
            );
        }
    }

    #[test]
    fn run_until_caps_at_max_replications() {
        // An impossible precision target: the harness must stop at the cap.
        let exp = Experiment::new(2).unwrap();
        let rule = RelativePrecision::new(1e-12).unwrap();
        let net = toy_network();
        let result = exp
            .run_until(
                rule,
                6,
                |r: &ClosedRunResult| r.throughput,
                |rep| run_net(&net, rep),
            )
            .unwrap();
        assert_eq!(result.replications(), 6);
    }

    #[test]
    fn planner_cross_check_against_replicated_simulation() {
        // The paper's Figure 9 validation, upgraded from a point estimate:
        // the analytic planner prediction must fall within (a small
        // model-error margin of) the simulation's confidence interval.
        use crate::characterize::ServiceCharacterization;
        use crate::planner::{CapacityPlanner, PlannerOptions};

        let front = ServiceCharacterization {
            mean_service_time: 0.01,
            index_of_dispersion: 10.0,
            p95_service_time: 0.03,
            dispersion_converged: true,
            regression_r_squared: 1.0,
        };
        let db = ServiceCharacterization {
            mean_service_time: 0.006,
            index_of_dispersion: 40.0,
            p95_service_time: 0.02,
            dispersion_converged: true,
            regression_r_squared: 1.0,
        };
        let planner =
            CapacityPlanner::from_characterizations(front, db, PlannerOptions::default()).unwrap();
        let pop = 15;
        let think = 0.4;
        let predicted = planner.predict(pop, think).unwrap().throughput;

        let front_map = planner.front_fit().map();
        let db_map = planner.db_fit().map();
        let net = ClosedMapNetwork::new(pop, think, front_map, db_map).unwrap();
        let ci = Experiment::new(4)
            .unwrap()
            .master_seed(2024)
            .workers(2)
            .run(|rep| net.run(2000.0, 200.0, rep.seed))
            .unwrap()
            .metric(|r| r.throughput)
            .unwrap();
        let margin = 0.05 * predicted + ci.half_width;
        assert!(
            (predicted - ci.mean).abs() <= margin,
            "planner X = {predicted} vs simulated X = {} +/- {} (margin {margin})",
            ci.mean,
            ci.half_width
        );
    }
}
