//! Property-based tests over the workspace's core invariants.

use proptest::prelude::*;

use burstcap_map::fit::Map2Fitter;
use burstcap_map::ph::Ph2;
use burstcap_map::trace::{impose_burstiness, BurstProfile};
use burstcap_map::Map2;
use burstcap_qn::bounds::throughput_bounds;
use burstcap_qn::mva::ClosedMva;
use burstcap_stats::descriptive::{percentile, scv};
use burstcap_stats::dispersion::index_of_dispersion_acf;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Percentiles are monotone in p and bracketed by min/max.
    #[test]
    fn percentile_monotone_and_bounded(
        mut data in prop::collection::vec(0.0f64..1e6, 1..200),
        p1 in 0.0f64..1.0,
        p2 in 0.0f64..1.0,
    ) {
        data.iter_mut().for_each(|x| *x += 1e-9);
        let (lo, hi) = (p1.min(p2), p1.max(p2));
        let q_lo = percentile(&data, lo).unwrap();
        let q_hi = percentile(&data, hi).unwrap();
        prop_assert!(q_lo <= q_hi + 1e-12);
        let min = data.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = data.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(q_lo >= min - 1e-12 && q_hi <= max + 1e-12);
    }

    /// The balanced-means H2 fit reproduces any requested (mean, scv).
    #[test]
    fn ph2_fit_roundtrips(mean in 1e-4f64..1e3, c2 in 0.5f64..400.0) {
        let ph = Ph2::from_mean_scv(mean, c2).unwrap();
        prop_assert!((ph.mean() - mean).abs() / mean < 1e-8);
        prop_assert!((ph.scv() - c2).abs() / c2 < 1e-8);
    }

    /// Every MAP(2) of the mixed-phase family is internally consistent:
    /// stochastic embedded chain, gamma in (-1, 1), I >= 0, and the p95 of
    /// the marginal is invariant in gamma.
    #[test]
    fn mixed_phase_family_invariants(
        c2 in 1.05f64..100.0,
        gamma in 0.0f64..0.999,
    ) {
        let marginal = Ph2::from_mean_scv(1.0, c2).unwrap();
        let map = Map2::from_hyper_marginal(marginal, gamma).unwrap();
        let p = map.embedded_chain();
        for row in p {
            prop_assert!((row[0] + row[1] - 1.0).abs() < 1e-9);
            prop_assert!(row[0] >= -1e-12 && row[1] >= -1e-12);
        }
        prop_assert!(map.gamma() < 1.0 && map.gamma() > -1.0);
        prop_assert!(map.index_of_dispersion() >= c2 * 0.99);
        let base_p95 = marginal.quantile(0.95).unwrap();
        let map_p95 = map.quantile(0.95).unwrap();
        prop_assert!((base_p95 - map_p95).abs() / base_p95 < 1e-6);
    }

    /// The Section 4.1 fitter hits its three targets within tolerance for
    /// any reasonable combination.
    #[test]
    fn fitter_hits_targets(
        mean in 1e-3f64..1.0,
        i in 1.0f64..400.0,
        p95_factor in 1.2f64..5.0,
    ) {
        let p95 = mean * p95_factor;
        let fitted = Map2Fitter::new(mean, i, p95).fit().unwrap();
        let map = fitted.map();
        prop_assert!((map.mean() - mean).abs() / mean < 1e-6);
        prop_assert!(
            (map.index_of_dispersion() - i).abs() / i < 0.2,
            "I achieved {} vs target {i}",
            map.index_of_dispersion()
        );
    }

    /// Reordering a trace never changes its marginal statistics.
    #[test]
    fn reordering_preserves_marginals(
        data in prop::collection::vec(0.01f64..100.0, 10..300),
        gamma in 0.0f64..0.99,
        seed in any::<u64>(),
    ) {
        let profile = BurstProfile::Modulated { p_small: 0.8, gamma };
        let reordered = impose_burstiness(&data, profile, seed).unwrap();
        let mean_a = data.iter().sum::<f64>() / data.len() as f64;
        let mean_b = reordered.iter().sum::<f64>() / reordered.len() as f64;
        prop_assert!((mean_a - mean_b).abs() < 1e-9);
        prop_assert!((scv(&data).unwrap() - scv(&reordered).unwrap()).abs() < 1e-9);
    }

    /// MVA throughput is monotone in population and bracketed by the
    /// operational bounds.
    #[test]
    fn mva_within_bounds_and_monotone(
        d1 in 1e-4f64..0.1,
        d2 in 1e-4f64..0.1,
        z in 0.0f64..2.0,
        n in 1usize..200,
    ) {
        let mva = ClosedMva::new(vec![d1, d2], z).unwrap();
        let x_n = mva.solve(n).unwrap().throughput;
        let x_n1 = mva.solve(n + 1).unwrap().throughput;
        prop_assert!(x_n1 >= x_n - 1e-9);
        let b = throughput_bounds(&[d1, d2], z, n).unwrap();
        prop_assert!(x_n <= b.upper + 1e-9);
        prop_assert!(x_n >= b.lower - 1e-9);
        prop_assert!(x_n <= b.balanced_upper + 1e-9);
    }

    /// Eq. (1) on white noise reduces to the SCV (the autocorrelation sum
    /// vanishes): I stays within a band of the SCV.
    #[test]
    fn dispersion_of_iid_near_scv(seed in any::<u64>()) {
        // Deterministic xorshift trace per seed.
        let mut s = seed | 1;
        let trace: Vec<f64> = (0..20_000)
            .map(|_| {
                s ^= s << 13;
                s ^= s >> 7;
                s ^= s << 17;
                (s >> 11) as f64 / (1u64 << 53) as f64 + 0.01
            })
            .collect();
        let i = index_of_dispersion_acf(&trace, 50).unwrap();
        let c2 = scv(&trace).unwrap();
        prop_assert!((i - c2).abs() < 0.15, "I = {i}, SCV = {c2}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The exact MAP-QN solution conserves population and respects the
    /// utilization law for any fitted pair of processes.
    #[test]
    fn mapqn_conservation_laws(
        i_front in 1.0f64..50.0,
        i_db in 1.0f64..200.0,
        pop in 1usize..25,
    ) {
        let front = Map2Fitter::new(0.01, i_front, 0.03).fit().unwrap().map();
        let db = Map2Fitter::new(0.006, i_db, 0.02).fit().unwrap().map();
        let z = 0.4;
        let sol = burstcap_qn::mapqn::MapNetwork::new(pop, z, front, db)
            .unwrap()
            .solve()
            .unwrap();
        // Population conservation via Little's law.
        let total = sol.mean_jobs_front + sol.mean_jobs_db + sol.throughput * z;
        prop_assert!((total - pop as f64).abs() < 1e-6, "population leak: {total}");
        // Utilization law per tier.
        prop_assert!((sol.utilization_front - sol.throughput * 0.01).abs() < 1e-6);
        prop_assert!((sol.utilization_db - sol.throughput * 0.006).abs() < 1e-6);
        // Bounded utilizations.
        prop_assert!(sol.utilization_front <= 1.0 + 1e-9);
        prop_assert!(sol.utilization_db <= 1.0 + 1e-9);
    }
}
