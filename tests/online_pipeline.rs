//! End-to-end gates for the streaming/online subsystem: testbed feed →
//! window replay → streaming characterization → CUSUM detection → rolling
//! re-fit/re-solve, cross-checked against the batch pipeline on the same
//! data.

use burstcap::characterize::{characterize, CharacterizeOptions};
use burstcap::measurements::TierMeasurements;
use burstcap::planner::{CapacityPlanner, PlannerOptions};
use burstcap_online::detector::CusumOptions;
use burstcap_online::planner::{OnlinePlanner, OnlinePlannerOptions};
use burstcap_online::sar::SarTextSource;
use burstcap_online::window::{ReplaySource, WindowSource};
use burstcap_tpcw::contention::ContentionConfig;
use burstcap_tpcw::mix::Mix;
use burstcap_tpcw::monitor::TierId;
use burstcap_tpcw::testbed::{Testbed, TestbedConfig};

fn run(
    seed: u64,
    duration: f64,
    contention: ContentionConfig,
) -> burstcap_tpcw::monitor::TestbedRun {
    Testbed::new(
        TestbedConfig::new(Mix::Browsing, 60)
            .duration(duration)
            .seed(seed)
            .contention(contention),
    )
    .expect("valid config")
    .run()
    .expect("testbed runs")
}

/// Streaming the testbed feed reproduces the batch pipeline: identical
/// demand, near-identical dispersion, comparable prediction.
#[test]
fn online_first_fit_matches_batch_planner() {
    let stable = run(3, 1800.0, ContentionConfig::disabled());
    let mut feed = ReplaySource::from_run(&stable).expect("feed");
    let windows = feed.remaining();

    let mut options = OnlinePlannerOptions::new(40, 0.5);
    options.min_windows = windows; // fit exactly once, from the whole run
    options.replan_every = windows;
    let mut planner = OnlinePlanner::new(feed.resolution(), 2, options).expect("planner");
    let reports = planner.drain(&mut feed).expect("drains");
    assert_eq!(reports.len(), 1, "one fit from the full feed");
    assert!(reports[0].refitted && !reports[0].warm_started);

    // Batch pipeline on the same monitoring data.
    let tier = |id| {
        let m = stable.monitoring(id).expect("monitoring");
        TierMeasurements::new(m.resolution, m.utilization, m.completions).expect("measurements")
    };
    let (front, db) = (tier(TierId::Front), tier(TierId::Db));
    let batch = CapacityPlanner::with_options(&front, &db, PlannerOptions::default())
        .expect("batch planner");

    let online_chars = planner.fitted_characterizations();
    let batch_chars = [
        characterize(&front, CharacterizeOptions::default()).expect("front"),
        characterize(&db, CharacterizeOptions::default()).expect("db"),
    ];
    for (o, b) in online_chars.iter().zip(&batch_chars) {
        // The incremental regressor is bit-identical to the batch pass.
        assert_eq!(
            o.mean_service_time.to_bits(),
            b.mean_service_time.to_bits(),
            "streaming demand must equal batch demand"
        );
        // Integer-exact level sums: rounding-level dispersion gap.
        assert!(
            (o.index_of_dispersion - b.index_of_dispersion).abs() / b.index_of_dispersion.max(1.0)
                < 1e-9,
            "I: online {} vs batch {}",
            o.index_of_dispersion,
            b.index_of_dispersion
        );
    }

    // The predictions use sketched p95 targets, so they are close but not
    // identical.
    let online_x = planner.prediction().expect("fitted").throughput;
    let batch_x = batch.predict(40, 0.5).expect("predicts").throughput;
    assert!(
        (online_x - batch_x).abs() / batch_x < 0.05,
        "online {online_x} vs batch {batch_x}"
    );
}

/// The detect-and-replan loop: a contention shift mid-stream fires the
/// detector, the planner re-fits after (and only after) the shift, and the
/// re-solve warm-starts.
#[test]
fn online_planner_tracks_a_regime_shift() {
    let stable = run(11, 1500.0, ContentionConfig::disabled());
    let contended = run(
        12,
        1500.0,
        ContentionConfig {
            trigger_probability: 0.2,
            slowdown: 9.0,
            ..ContentionConfig::default()
        },
    );
    let mut feed = ReplaySource::from_run(&stable).expect("feed");
    let shift = feed.remaining();
    feed.append_run(&contended).expect("append");

    let mut options = OnlinePlannerOptions::new(60, 0.5);
    options.min_windows = 150;
    options.replan_every = 30;
    options.i_drift_threshold = 5.0;
    options.detector = CusumOptions {
        warmup_windows: 40,
        slack: 0.25,
        threshold: 8.0,
    };
    let mut planner = OnlinePlanner::new(feed.resolution(), 2, options).expect("planner");
    let reports = planner.drain(&mut feed).expect("drains");

    let first_alarm = reports
        .iter()
        .find(|r| r.regime_change)
        .map(|r| r.window)
        .expect("shift must alarm");
    assert!(
        first_alarm > shift && first_alarm <= shift + 20,
        "alarm at {first_alarm}, shift at {shift}"
    );
    assert!(
        reports
            .iter()
            .filter(|r| r.window > shift)
            .any(|r| r.refitted),
        "must re-fit after the shift"
    );
    let stats = planner.stats();
    assert!(stats.regime_changes >= 1);
    assert!(stats.warm_solves >= 1, "re-solves must warm-start");
    assert_eq!(stats.refits, stats.warm_solves + stats.cold_solves);
    // The post-shift model reflects the contended database.
    let db = planner.fitted_characterizations().last().expect("db tier");
    assert!(
        db.index_of_dispersion > 50.0,
        "contended db must be strongly bursty, I = {}",
        db.index_of_dispersion
    );
}

/// The sar-style text path feeds the same planner: render a testbed run as
/// text, parse it back, and get the identical first fit.
#[test]
fn sar_text_roundtrip_feeds_the_planner() {
    let stable = run(21, 1200.0, ContentionConfig::disabled());
    let series = stable.tandem_monitoring().expect("monitoring");
    let mut text = format!("# resolution: {}\n", series[0].resolution);
    for k in 0..series[0].utilization.len().min(series[1].utilization.len()) {
        text.push_str(&format!(
            "{:.10} {} {:.10} {}\n",
            series[0].utilization[k],
            series[0].completions[k],
            series[1].utilization[k],
            series[1].completions[k]
        ));
    }
    let mut parsed = SarTextSource::parse(&text).expect("parses");
    let mut replay = ReplaySource::from_tier_series(&series).expect("replay");
    assert_eq!(parsed.tier_count(), replay.tier_count());

    let fit_from = |source: &mut dyn WindowSource| {
        let mut options = OnlinePlannerOptions::new(30, 0.5);
        options.min_windows = 200;
        options.replan_every = 1000;
        let mut planner = OnlinePlanner::new(source.resolution(), 2, options).expect("planner");
        while let Some(w) = source.next_window().expect("window") {
            planner.ingest(&w).expect("ingest");
        }
        planner
            .prediction()
            .expect("enough windows for the first fit")
            .throughput
    };
    let x_text = fit_from(&mut parsed);
    let x_replay = fit_from(&mut replay);
    // The text round trip keeps 10 significant digits of utilization, so
    // the fits are essentially identical.
    assert!(
        (x_text - x_replay).abs() / x_replay < 1e-6,
        "text {x_text} vs replay {x_replay}"
    );
}
