//! Cross-validation of the exact MAP-QN solver against the independent
//! discrete-event simulator, across burstiness regimes.

use burstcap_map::fit::Map2Fitter;
use burstcap_map::Map2;
use burstcap_qn::mapqn::MapNetwork;
use burstcap_sim::queues::ClosedMapNetwork;

fn check_agreement(front: Map2, db: Map2, pop: usize, seed: u64, tol: f64) {
    let exact = MapNetwork::new(pop, 0.4, front, db)
        .expect("valid")
        .solve()
        .expect("solves");
    let sim = ClosedMapNetwork::new(pop, 0.4, front, db)
        .expect("valid")
        .run(4000.0, 400.0, seed)
        .expect("runs");
    let rel = (exact.throughput - sim.throughput).abs() / exact.throughput;
    assert!(
        rel < tol,
        "pop {pop}: analytic X = {} vs simulated X = {} ({rel:.4} rel)",
        exact.throughput,
        sim.throughput
    );
    assert!(
        (exact.utilization_db - sim.utilization_db).abs() < 0.05,
        "pop {pop}: U_db analytic {} vs sim {}",
        exact.utilization_db,
        sim.utilization_db
    );
    assert!(
        (exact.mean_jobs_front - sim.mean_jobs_front).abs() < 0.15 * pop as f64 + 0.5,
        "pop {pop}: Q_fs analytic {} vs sim {}",
        exact.mean_jobs_front,
        sim.mean_jobs_front
    );
}

#[test]
fn exponential_network_agrees() {
    let front = Map2::poisson(1.0 / 0.01).expect("valid");
    let db = Map2::poisson(1.0 / 0.006).expect("valid");
    check_agreement(front, db, 20, 11, 0.03);
}

#[test]
fn moderately_bursty_network_agrees() {
    let front = Map2Fitter::new(0.01, 10.0, 0.03)
        .fit()
        .expect("feasible")
        .map();
    let db = Map2Fitter::new(0.006, 40.0, 0.02)
        .fit()
        .expect("feasible")
        .map();
    check_agreement(front, db, 25, 12, 0.06);
}

#[test]
fn strongly_bursty_network_agrees() {
    // Long simulation needed: rare slow phases dominate the variance.
    let front = Map2::poisson(1.0 / 0.008).expect("valid");
    let db = Map2Fitter::new(0.005, 150.0, 0.015)
        .fit()
        .expect("feasible")
        .map();
    check_agreement(front, db, 30, 13, 0.10);
}

#[test]
fn population_sweep_is_monotone_in_both() {
    let front = Map2::poisson(1.0 / 0.01).expect("valid");
    let db = Map2Fitter::new(0.007, 60.0, 0.02)
        .fit()
        .expect("feasible")
        .map();
    let mut last_exact = 0.0;
    for pop in [5usize, 15, 30] {
        let exact = MapNetwork::new(pop, 0.4, front, db)
            .expect("valid")
            .solve()
            .expect("solves");
        assert!(exact.throughput >= last_exact - 1e-9);
        last_exact = exact.throughput;
    }
}
