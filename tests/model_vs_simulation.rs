//! Cross-validation of the exact MAP-QN solver against the independent
//! discrete-event simulator, across burstiness regimes.
//!
//! Since the multi-replication harness landed, these checks consume
//! CI-bearing aggregates instead of single-seed point estimates: the
//! analytic throughput must fall within the simulation's Student-t
//! interval (plus a small numerical margin), which both tightens the
//! comparison and stops a lucky seed from masking a solver regression.

use burstcap::experiment::Experiment;
use burstcap_map::fit::Map2Fitter;
use burstcap_map::Map2;
use burstcap_qn::mapqn::MapNetwork;
use burstcap_sim::queues::ClosedMapNetwork;

/// Replications per regime: enough for a meaningful interval, few enough
/// that the suite stays fast.
const REPLICATIONS: usize = 4;

fn check_agreement(front: Map2, db: Map2, pop: usize, master_seed: u64, tol: f64) {
    let exact = MapNetwork::new(pop, 0.4, front, db)
        .expect("valid")
        .solve()
        .expect("solves");
    let sim = ClosedMapNetwork::new(pop, 0.4, front, db).expect("valid");
    let result = Experiment::new(REPLICATIONS)
        .expect("valid plan")
        .master_seed(master_seed)
        .workers(2)
        .run(|rep| sim.run(4000.0, 400.0, rep.seed))
        .expect("replications run");

    let x = result.metric(|r| r.throughput).expect("throughput CI");
    let margin = tol * exact.throughput + x.half_width;
    assert!(
        (exact.throughput - x.mean).abs() <= margin,
        "pop {pop}: analytic X = {} vs simulated X = {} +/- {} (margin {margin})",
        exact.throughput,
        x.mean,
        x.half_width
    );

    let u_db = result.metric(|r| r.utilization_db).expect("U_db CI");
    assert!(
        (exact.utilization_db - u_db.mean).abs() <= 0.05 + u_db.half_width,
        "pop {pop}: U_db analytic {} vs sim {} +/- {}",
        exact.utilization_db,
        u_db.mean,
        u_db.half_width
    );

    let q_fs = result.metric(|r| r.mean_jobs_front).expect("Q_fs CI");
    assert!(
        (exact.mean_jobs_front - q_fs.mean).abs() <= 0.15 * pop as f64 + 0.5 + q_fs.half_width,
        "pop {pop}: Q_fs analytic {} vs sim {} +/- {}",
        exact.mean_jobs_front,
        q_fs.mean,
        q_fs.half_width
    );
}

#[test]
fn exponential_network_agrees() {
    let front = Map2::poisson(1.0 / 0.01).expect("valid");
    let db = Map2::poisson(1.0 / 0.006).expect("valid");
    check_agreement(front, db, 20, 11, 0.03);
}

#[test]
fn moderately_bursty_network_agrees() {
    let front = Map2Fitter::new(0.01, 10.0, 0.03)
        .fit()
        .expect("feasible")
        .map();
    let db = Map2Fitter::new(0.006, 40.0, 0.02)
        .fit()
        .expect("feasible")
        .map();
    check_agreement(front, db, 25, 12, 0.06);
}

#[test]
fn strongly_bursty_network_agrees() {
    // Long simulation needed: rare slow phases dominate the variance.
    let front = Map2::poisson(1.0 / 0.008).expect("valid");
    let db = Map2Fitter::new(0.005, 150.0, 0.015)
        .fit()
        .expect("feasible")
        .map();
    check_agreement(front, db, 30, 13, 0.10);
}

#[test]
fn population_sweep_is_monotone_in_both() {
    let front = Map2::poisson(1.0 / 0.01).expect("valid");
    let db = Map2Fitter::new(0.007, 60.0, 0.02)
        .fit()
        .expect("feasible")
        .map();
    let mut last_exact = 0.0;
    for pop in [5usize, 15, 30] {
        let exact = MapNetwork::new(pop, 0.4, front, db)
            .expect("valid")
            .solve()
            .expect("solves");
        assert!(exact.throughput >= last_exact - 1e-9);
        last_exact = exact.throughput;
    }
}
