//! Ground-truth recovery: the measurement pipeline must re-identify the
//! parameters of processes we construct analytically.

use rand::rngs::SmallRng;
use rand::SeedableRng;

use burstcap_map::fit::{fit_from_trace, Map2Fitter};
use burstcap_map::sampler::MapSampler;
use burstcap_stats::dispersion::{index_of_dispersion_acf, index_of_dispersion_counting};

/// Sample a long trace from a known MAP(2).
fn trace_of(i_target: f64, seed: u64, n: usize) -> Vec<f64> {
    let map = Map2Fitter::new(1.0, i_target, 3.0)
        .fit()
        .expect("feasible")
        .map();
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut sampler = MapSampler::new(map, &mut rng);
    sampler.sample_trace(n, &mut rng)
}

#[test]
fn counting_estimator_recovers_known_dispersion() {
    for (i_target, band) in [(5.0, 2.0..15.0), (50.0, 18.0..120.0)] {
        let trace = trace_of(i_target, 21, 400_000);
        let est = index_of_dispersion_counting(&trace, 40.0, 0.02).expect("estimates");
        let i = est.index_of_dispersion();
        assert!(
            band.contains(&i),
            "target I = {i_target}: estimated {i}, expected in {band:?}"
        );
    }
}

#[test]
fn acf_and_counting_estimators_agree_in_order_of_magnitude() {
    let trace = trace_of(30.0, 22, 300_000);
    let via_acf = index_of_dispersion_acf(&trace, 2_000).expect("acf");
    let via_counting = index_of_dispersion_counting(&trace, 40.0, 0.02)
        .expect("counting")
        .index_of_dispersion();
    let ratio = via_acf / via_counting;
    assert!(
        (0.3..3.0).contains(&ratio),
        "estimators disagree: acf {via_acf} vs counting {via_counting}"
    );
}

#[test]
fn full_fit_roundtrip_preserves_queueing_behaviour() {
    // Fit a MAP to a trace sampled from a known MAP, then verify that both
    // produce similar closed-network throughput — the property that matters
    // for capacity planning.
    let truth = Map2Fitter::new(0.006, 80.0, 0.018)
        .fit()
        .expect("feasible")
        .map();
    let mut rng = SmallRng::seed_from_u64(23);
    let mut sampler = MapSampler::new(truth, &mut rng);
    let trace: Vec<f64> = sampler.sample_trace(400_000, &mut rng);
    let refit = fit_from_trace(&trace, 0.24, 0.02).expect("refits").map();

    let front = burstcap_map::Map2::poisson(1.0 / 0.008).expect("valid");
    let x_truth = burstcap_qn::mapqn::MapNetwork::new(40, 0.3, front, truth)
        .expect("valid")
        .solve()
        .expect("solves")
        .throughput;
    let x_refit = burstcap_qn::mapqn::MapNetwork::new(40, 0.3, front, refit)
        .expect("valid")
        .solve()
        .expect("solves")
        .throughput;
    let rel = (x_truth - x_refit).abs() / x_truth;
    assert!(
        rel < 0.15,
        "throughput divergence {rel:.3}: truth {x_truth} vs refit {x_refit}"
    );
}

#[test]
fn busy_period_p95_tracks_marginal_quantile() {
    // Synthesize monitoring windows from a known marginal and verify the
    // Section 4.1 p95 estimator lands near the true quantile at high I.
    let map = Map2Fitter::new(1.0, 200.0, 3.5)
        .fit()
        .expect("feasible")
        .map();
    let mut rng = SmallRng::seed_from_u64(24);
    let mut sampler = MapSampler::new(map, &mut rng);
    let trace = sampler.sample_trace(300_000, &mut rng);
    // Arrival-limited monitoring windows, the regime the Section 4.1
    // estimator assumes: a stable number of jobs per window (n = 40), busy
    // time varying with the service phase. Window length T = 400 s keeps
    // utilization below 1 even in the slow phase.
    let t_window = 400.0;
    let mut util = Vec::new();
    let mut counts = Vec::new();
    for chunk in trace.chunks_exact(40) {
        let busy: f64 = chunk.iter().sum();
        util.push((busy / t_window).min(1.0));
        counts.push(40u64);
    }
    let est = burstcap_stats::busy::ServicePercentileEstimator::new(t_window)
        .estimate(&util, &counts)
        .expect("estimates");
    let true_p95 = map.quantile(0.95).expect("quantile");
    // High persistence keeps within-window speeds similar, so the busy-time
    // scaling should land near the true quantile (within a factor ~2).
    let ratio = est.p95_service_time / true_p95;
    assert!(
        (0.5..2.0).contains(&ratio),
        "p95 estimate {} vs true {true_p95} (ratio {ratio})",
        est.p95_service_time
    );
}
