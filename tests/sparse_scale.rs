//! Scale regression for the sparse CTMC engine: the exact MAP(2)×MAP(2)
//! network of the paper must stay solvable at populations far beyond the
//! dense solvers' reach, and must agree with the dense LU oracle where both
//! paths are feasible.

use burstcap_map::fit::Map2Fitter;
use burstcap_qn::ctmc::SteadyStateMethod;
use burstcap_qn::mapqn::{MapNetwork, DEFAULT_STATE_LIMIT};

/// Moderately bursty MAP(2) fits for both tiers (the converging regime of
/// the iterative engine; stiffer fits fall back to the direct solver via
/// `solve_auto`, which is covered in `burstcap-qn`'s own tests).
fn tiers() -> (burstcap_map::Map2, burstcap_map::Map2) {
    let front = Map2Fitter::new(0.01, 4.0, 0.03).fit().unwrap().map();
    let db = Map2Fitter::new(0.008, 6.0, 0.02).fit().unwrap().map();
    (front, db)
}

#[test]
fn population_100_map_network_solves_via_sparse_path() {
    let (front, db) = tiers();
    let net = MapNetwork::new(100, 0.3, front, db).unwrap();
    assert!(
        net.state_count() < DEFAULT_STATE_LIMIT,
        "population 100 must fit the default state limit, needs {}",
        net.state_count()
    );
    // Default solve_iterative tuning (the production sparse default).
    let sol = net.solve_iterative(SteadyStateMethod::default()).unwrap();
    assert_eq!(sol.states, 20_604);
    // Sanity: a closed network cannot beat its bottleneck or its population.
    assert!(sol.throughput > 0.0 && sol.throughput <= 1.0 / 0.008 + 1e-9);
    assert!(sol.utilization_front <= 1.0 + 1e-9 && sol.utilization_db <= 1.0 + 1e-9);
    // Population conservation (Little's law over the three stages) is a
    // whole-distribution invariant: a wrong stationary vector breaks it.
    let thinking = sol.throughput * 0.3;
    let total = sol.mean_jobs_front + sol.mean_jobs_db + thinking;
    assert!(
        (total - 100.0).abs() < 1e-4,
        "population not conserved: {total}"
    );
}

#[test]
fn sparse_matches_dense_lu_on_dense_feasible_population() {
    let (front, db) = tiers();
    let net = MapNetwork::new(10, 0.3, front, db).unwrap();
    let sparse = net.solve_sparse().unwrap();
    let lu = net
        .solve_iterative(SteadyStateMethod::DenseLu { limit: 100_000 })
        .unwrap();
    assert!(
        (sparse.throughput - lu.throughput).abs() / lu.throughput < 1e-8,
        "sparse {} vs dense LU {}",
        sparse.throughput,
        lu.throughput
    );
    assert!((sparse.utilization_db - lu.utilization_db).abs() < 1e-8);
    assert!((sparse.mean_jobs_front - lu.mean_jobs_front).abs() < 1e-7);
}
