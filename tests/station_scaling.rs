//! The N-station pipeline end to end: a three-station (web + app + db)
//! MAP network cross-validated three ways — exact CTMC vs replicated
//! simulation (with Student-t intervals) vs N-station MVA in the
//! exponential degenerate case — plus a station-count × population scaling
//! smoke over `solve_auto` (the grid CI runs so the generic path cannot
//! silently rot).

use burstcap::experiment::Experiment;
use burstcap_map::fit::Map2Fitter;
use burstcap_map::Map2;
use burstcap_qn::mapqn::{MapNetwork, AUTO_SPARSE_THRESHOLD};
use burstcap_qn::mva::ClosedMva;
use burstcap_sim::queues::ClosedMapNetwork;

/// Fitted three-tier stations: a light, mildly variable web tier in front
/// of the moderately bursty app and db tiers.
fn three_tier_stations() -> Vec<Map2> {
    vec![
        Map2Fitter::new(0.004, 4.0, 0.012).fit().unwrap().map(),
        Map2Fitter::new(0.012, 20.0, 0.035).fit().unwrap().map(),
        Map2Fitter::new(0.008, 40.0, 0.025).fit().unwrap().map(),
    ]
}

#[test]
fn three_tier_analytic_matches_replicated_simulation() {
    // The acceptance gate of the N-station generalization: the exact
    // solve_auto answer for web + app + db must fall inside the replicated
    // simulation's confidence interval (plus a small model margin).
    let stations = three_tier_stations();
    let pop = 12;
    let z = 0.3;
    let exact = MapNetwork::tandem(pop, z, stations.clone())
        .unwrap()
        .solve_auto(AUTO_SPARSE_THRESHOLD)
        .unwrap();
    let sim = ClosedMapNetwork::tandem(pop, z, stations).unwrap();
    let result = Experiment::new(4)
        .unwrap()
        .master_seed(17)
        .workers(2)
        .run(|rep| sim.run(3000.0, 300.0, rep.seed))
        .unwrap();

    let x = result.metric(|r| r.throughput).unwrap();
    let margin = 0.03 * exact.throughput + x.half_width;
    assert!(
        (exact.throughput - x.mean).abs() <= margin,
        "X: analytic {} vs sim {} +/- {} (margin {margin})",
        exact.throughput,
        x.mean,
        x.half_width
    );
    for i in 0..3 {
        let u = result.metric(|r| r.utilization[i]).unwrap();
        assert!(
            (exact.utilization[i] - u.mean).abs() <= 0.04 + u.half_width,
            "station {i}: U analytic {} vs sim {} +/- {}",
            exact.utilization[i],
            u.mean,
            u.half_width
        );
        let q = result.metric(|r| r.mean_jobs[i]).unwrap();
        assert!(
            (exact.mean_jobs[i] - q.mean).abs() <= 0.15 * pop as f64 / 3.0 + q.half_width,
            "station {i}: Q analytic {} vs sim {} +/- {}",
            exact.mean_jobs[i],
            q.mean,
            q.half_width
        );
    }
}

#[test]
fn three_tier_exponential_degenerate_matches_mva_via_solve_auto() {
    // Product-form check through the public solve_auto entry point, on both
    // sides of the engine crossover.
    let demands = vec![0.004, 0.012, 0.008];
    let stations: Vec<Map2> = demands
        .iter()
        .map(|&d| Map2::poisson(1.0 / d).unwrap())
        .collect();
    let mva = ClosedMva::new(demands, 0.3).unwrap();
    for (pop, threshold) in [
        (4usize, AUTO_SPARSE_THRESHOLD),
        (8, AUTO_SPARSE_THRESHOLD),
        (8, 0),
    ] {
        let exact = MapNetwork::tandem(pop, 0.3, stations.clone())
            .unwrap()
            .solve_auto(threshold)
            .unwrap();
        let baseline = mva.solve(pop).unwrap();
        assert!(
            (exact.throughput - baseline.throughput).abs() / baseline.throughput < 1e-6,
            "N={pop} threshold={threshold}: X {} vs MVA {}",
            exact.throughput,
            baseline.throughput
        );
        for i in 0..3 {
            assert!(
                (exact.utilization[i] - baseline.utilization[i]).abs() < 1e-6,
                "N={pop} station {i}"
            );
        }
    }
}

#[test]
fn two_tier_entry_points_are_the_m2_tandem() {
    // MapNetwork::new and ClosedMapNetwork::new stay exact synonyms of the
    // two-station tandem: identical solutions and identical sample paths.
    let front = Map2Fitter::new(0.01, 8.0, 0.03).fit().unwrap().map();
    let db = Map2Fitter::new(0.008, 12.0, 0.02).fit().unwrap().map();
    let a = MapNetwork::new(10, 0.3, front, db)
        .unwrap()
        .solve()
        .unwrap();
    let b = MapNetwork::tandem(10, 0.3, vec![front, db])
        .unwrap()
        .solve()
        .unwrap();
    assert_eq!(a.throughput, b.throughput);
    assert_eq!(a.utilization, b.utilization);
    let sa = ClosedMapNetwork::new(10, 0.3, front, db)
        .unwrap()
        .run(500.0, 50.0, 7)
        .unwrap();
    let sb = ClosedMapNetwork::tandem(10, 0.3, vec![front, db])
        .unwrap()
        .run(500.0, 50.0, 7)
        .unwrap();
    assert_eq!(sa.throughput, sb.throughput);
    assert_eq!(sa.utilization, sb.utilization);
}

#[test]
fn station_count_scaling_smoke() {
    // Small M x N grid through solve_auto with exponential stations: the
    // direct path below the crossover, the sparse path above it. Checks
    // the structural invariants every point must satisfy.
    let demand = 0.01;
    let z = 0.5;
    for m in [2usize, 3, 4] {
        let stations = vec![Map2::poisson(1.0 / demand).unwrap(); m];
        let mut last_x = 0.0;
        let pops: &[usize] = match m {
            2 => &[5, 20],
            3 => &[5, 12],
            _ => &[4, 10],
        };
        for &pop in pops {
            let net = MapNetwork::tandem(pop, z, stations.clone()).unwrap();
            let sol = net.solve_auto(AUTO_SPARSE_THRESHOLD).unwrap();
            assert_eq!(sol.utilization.len(), m);
            assert_eq!(sol.states, net.state_count());
            // Utilizations are probabilities; identical stations load
            // identically.
            for &u in &sol.utilization {
                assert!((0.0..=1.0 + 1e-9).contains(&u), "M={m} N={pop}: U={u}");
                assert!((u - sol.utilization[0]).abs() < 1e-6);
            }
            // Population conservation via Little's law at the think stage.
            let total: f64 = sol.mean_jobs.iter().sum::<f64>() + sol.throughput * z;
            assert!(
                (total - pop as f64).abs() < 1e-5,
                "M={m} N={pop}: population leak, total={total}"
            );
            // Throughput is monotone in population and bounded by the
            // bottleneck service rate.
            assert!(sol.throughput >= last_x - 1e-9, "M={m} N={pop}");
            assert!(sol.throughput <= 1.0 / demand + 1e-6);
            last_x = sol.throughput;
        }
    }
}
