//! Workspace smoke test: the umbrella crate's re-exports compile and the
//! quickstart path — synthesize measurements, characterize, fit, predict —
//! runs end to end through the re-exported names alone.
//!
//! Also exercises the vendored serde shim derives, which cannot be tested
//! inside `vendor/serde` itself (its generated impls reference the crate by
//! name).

use burstcap_repro::burstcap::measurements::TierMeasurements;
use burstcap_repro::burstcap::planner::{CapacityPlanner, MvaBaseline};
use burstcap_repro::burstcap_map::trace::{hyperexp_trace, impose_burstiness, BurstProfile};
use burstcap_repro::burstcap_qn::mva::ClosedMva;
use burstcap_repro::burstcap_sim::queues::MTrace1;
use burstcap_repro::burstcap_stats::dispersion::index_of_dispersion_acf;
use burstcap_repro::burstcap_tpcw::mix::Mix;

/// Every member crate is reachable through the umbrella re-exports.
#[test]
fn umbrella_reexports_resolve() {
    // One load-bearing symbol per member crate; using them proves the
    // `pub use` graph in src/lib.rs and all manifest edges.
    let _solver = ClosedMva::new(vec![0.01, 0.02], 0.5).expect("qn reachable");
    let trace = hyperexp_trace(64, 1.0, 3.0, 7).expect("map reachable");
    let i = index_of_dispersion_acf(&trace, 8).expect("stats reachable");
    assert!(i.is_finite());
    assert!(Mix::Browsing.mean_front_demand() > 0.0, "tpcw reachable");
    let _station: Option<MTrace1> = None; // sim reachable at the type level
}

/// The quickstart example's pipeline runs under the umbrella names: bursty
/// and steady tiers are distinguished and the burst-aware model saturates
/// no later than MVA.
#[test]
fn quickstart_path_runs() {
    let front =
        TierMeasurements::new(5.0, vec![0.50; 400], vec![250u64; 400]).expect("front measurements");
    let mut util = Vec::new();
    let mut counts = Vec::new();
    for block in 0..40 {
        for _ in 0..10 {
            util.push(0.45);
            counts.push(if block % 2 == 0 { 400u64 } else { 100 });
        }
    }
    let db = TierMeasurements::new(5.0, util, counts).expect("db measurements");

    let planner = CapacityPlanner::from_measurements(&front, &db).expect("planner");
    let mva = MvaBaseline::from_measurements(&front, &db).expect("baseline");

    let fc = planner.front_characterization();
    let dc = planner.db_characterization();
    assert!(
        dc.index_of_dispersion > fc.index_of_dispersion,
        "bursty db (I = {}) must out-disperse the steady front (I = {})",
        dc.index_of_dispersion,
        fc.index_of_dispersion
    );

    for ebs in [10usize, 25, 50, 100] {
        let p = planner.predict(ebs, 0.5).expect("prediction");
        let b = mva.predict(ebs, 0.5).expect("mva prediction");
        assert!(p.throughput > 0.0 && b.throughput > 0.0);
        assert!(
            p.throughput <= b.throughput * 1.05,
            "ebs {ebs}: burstiness must not raise capacity (model {} vs mva {})",
            p.throughput,
            b.throughput
        );
    }
}

/// Trace reordering through the umbrella preserves marginals (the Figure 1
/// construction used throughout the examples).
#[test]
fn figure1_reordering_through_umbrella() {
    let base = hyperexp_trace(4_000, 1.0, 3.0, 11).expect("trace");
    let sorted = impose_burstiness(&base, BurstProfile::Sorted, 11).expect("sorted");
    let mut expect = base.clone();
    expect.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    assert_eq!(sorted, expect);
}

/// The vendored serde derives expand to valid impls for structs, enums,
/// and generic types.
#[test]
fn serde_shim_derives_compile() {
    use serde_shim_check::assert_serde;
    assert_serde::<serde_shim_check::Plain>();
    assert_serde::<serde_shim_check::Shape>();
    assert_serde::<serde_shim_check::Wrapper<f64>>();
}

// The types only exist to exercise derive expansion; they are never
// constructed.
#[allow(dead_code)]
mod serde_shim_check {
    use serde::{Deserialize, Serialize};

    #[derive(Serialize, Deserialize)]
    pub struct Plain {
        pub x: f64,
    }

    #[derive(Serialize, Deserialize)]
    pub enum Shape {
        Point,
        Rect { w: f64, h: f64 },
    }

    #[derive(Serialize, Deserialize)]
    pub struct Wrapper<T> {
        pub inner: Vec<T>,
    }

    pub fn assert_serde<T: Serialize + Deserialize>() {}
}
