//! End-to-end integration: testbed measurements → characterization → MAP
//! fitting → exact model → prediction accuracy, across crates.

use burstcap::measurements::TierMeasurements;
use burstcap::planner::{CapacityPlanner, MvaBaseline};
use burstcap_tpcw::mix::Mix;
use burstcap_tpcw::monitor::{TestbedRun, TierId};
use burstcap_tpcw::testbed::{Testbed, TestbedConfig};

fn tier(run: &TestbedRun, id: TierId) -> TierMeasurements {
    let m = run.monitoring(id).expect("monitoring series");
    TierMeasurements::new(m.resolution, m.utilization, m.completions).expect("valid series")
}

fn estimation_run(mix: Mix, z: f64, ebs: usize, seed: u64) -> TestbedRun {
    Testbed::new(
        TestbedConfig::new(mix, ebs)
            .think_time(z)
            .duration(2400.0)
            .seed(seed),
    )
    .expect("valid config")
    .run()
    .expect("testbed runs")
}

#[test]
fn browsing_pipeline_beats_mva_at_saturation() {
    // Estimate from a light-load fine-granularity trace, predict the loaded
    // system, compare against a fresh measured run — the paper's Figure 12
    // claim in one test.
    let est = estimation_run(Mix::Browsing, 7.0, 50, 1);
    let front = tier(&est, TierId::Front);
    let db = tier(&est, TierId::Db);
    let planner = CapacityPlanner::from_measurements(&front, &db).expect("plans");
    let mva = MvaBaseline::from_measurements(&front, &db).expect("regresses");

    // The database must be diagnosed as bursty, the front as non-bursty.
    let i_db = planner.db_characterization().index_of_dispersion;
    let i_fs = planner.front_characterization().index_of_dispersion;
    assert!(i_db > 10.0, "I_db = {i_db}, expected strongly bursty");
    assert!(
        i_db > 4.0 * i_fs,
        "I_db = {i_db} should dwarf I_fs = {i_fs}"
    );

    let measured = Testbed::new(
        TestbedConfig::new(Mix::Browsing, 125)
            .duration(900.0)
            .seed(9),
    )
    .expect("valid")
    .run()
    .expect("runs");

    let model = planner.predict(125, 0.5).expect("model");
    let baseline = mva.predict(125, 0.5).expect("baseline");
    let model_err = (model.throughput - measured.throughput).abs() / measured.throughput;
    let mva_err = (baseline.throughput - measured.throughput).abs() / measured.throughput;
    assert!(
        model_err < mva_err,
        "burst-aware model (err {model_err:.3}) must beat MVA (err {mva_err:.3})"
    );
    assert!(
        model_err < 0.2,
        "model error {model_err:.3} should stay within 20%"
    );
}

#[test]
fn ordering_pipeline_matches_mva() {
    // Without burstiness both models must agree and both must be accurate.
    let est = estimation_run(Mix::Ordering, 7.0, 50, 2);
    let front = tier(&est, TierId::Front);
    let db = tier(&est, TierId::Db);
    let planner = CapacityPlanner::from_measurements(&front, &db).expect("plans");
    let mva = MvaBaseline::from_measurements(&front, &db).expect("regresses");

    let measured = Testbed::new(
        TestbedConfig::new(Mix::Ordering, 100)
            .duration(900.0)
            .seed(10),
    )
    .expect("valid")
    .run()
    .expect("runs");
    let model = planner.predict(100, 0.5).expect("model");
    let baseline = mva.predict(100, 0.5).expect("baseline");
    for (name, x) in [("model", model.throughput), ("mva", baseline.throughput)] {
        let err = (x - measured.throughput).abs() / measured.throughput;
        assert!(
            err < 0.1,
            "{name} error {err:.3} too large for the ordering mix"
        );
    }
}

#[test]
fn demand_regression_recovers_configured_demands() {
    // The utilization-law regression on testbed output must recover the
    // mix's configured mean demands within sampling noise.
    let est = estimation_run(Mix::Shopping, 7.0, 50, 3);
    let front = tier(&est, TierId::Front);
    let planner_demand = burstcap_stats::regression::estimate_demand(
        front.utilization(),
        front.completions(),
        front.resolution(),
    )
    .expect("regression");
    let configured = Mix::Shopping.mean_front_demand();
    let rel = (planner_demand.mean_service_time - configured).abs() / configured;
    assert!(
        rel < 0.1,
        "regressed front demand {} vs configured {configured} ({rel:.3} rel err)",
        planner_demand.mean_service_time
    );
}

#[test]
fn predictions_respect_asymptotic_bounds() {
    // Model predictions can never exceed the operational bounds computed
    // from the same demands.
    let est = estimation_run(Mix::Browsing, 7.0, 50, 4);
    let front = tier(&est, TierId::Front);
    let db = tier(&est, TierId::Db);
    let planner = CapacityPlanner::from_measurements(&front, &db).expect("plans");
    let demands = vec![
        planner.front_characterization().mean_service_time,
        planner.db_characterization().mean_service_time,
    ];
    for pop in [10usize, 50, 100] {
        let p = planner.predict(pop, 0.5).expect("model");
        let b = burstcap_qn::bounds::throughput_bounds(&demands, 0.5, pop).expect("bounds");
        assert!(
            p.throughput <= b.upper + 1e-6,
            "pop {pop}: prediction {} above upper bound {}",
            p.throughput,
            b.upper
        );
    }
}
