//! Cross-replication determinism: the parallel experiment harness and a
//! serial fold over the same replication plan must produce bit-identical
//! aggregates for a fixed master seed. This extends the per-simulator
//! `deterministic_per_seed` tests to the batch path.

use burstcap::experiment::{Experiment, Replications};
use burstcap_map::Map2;
use burstcap_sim::queues::{ClosedMapNetwork, MTrace1};
use burstcap_tpcw::mix::Mix;
use burstcap_tpcw::testbed::{Testbed, TestbedConfig};

/// Fold a metric the way the harness consumers do: in replication order.
fn fold_bits(values: impl IntoIterator<Item = f64>) -> Vec<u64> {
    values.into_iter().map(f64::to_bits).collect()
}

#[test]
fn closed_network_parallel_aggregate_is_bit_identical_to_serial() {
    let front = Map2::poisson(1.0 / 0.015).expect("valid");
    let db = Map2::poisson(1.0 / 0.02).expect("valid");
    let net = ClosedMapNetwork::new(4, 0.4, front, db).expect("valid");
    let scenario = |rep: burstcap::experiment::Replication| net.run(200.0, 20.0, rep.seed);

    let serial = Replications::new(6)
        .expect("valid plan")
        .master_seed(2026)
        .run(scenario)
        .expect("serial fold");
    let parallel = Replications::new(6)
        .expect("valid plan")
        .master_seed(2026)
        .workers(4)
        .run(scenario)
        .expect("parallel fan");

    assert_eq!(
        fold_bits(serial.iter().map(|r| r.throughput)),
        fold_bits(parallel.iter().map(|r| r.throughput)),
    );
    assert_eq!(
        fold_bits(serial.iter().map(|r| r.mean_jobs_db)),
        fold_bits(parallel.iter().map(|r| r.mean_jobs_db)),
    );

    // And therefore the CI-bearing aggregates coincide exactly too.
    let ci_of = |workers: usize| {
        Experiment::new(6)
            .expect("valid plan")
            .master_seed(2026)
            .workers(workers)
            .run(scenario)
            .expect("runs")
            .metric(|r| r.throughput)
            .expect("CI")
    };
    let a = ci_of(1);
    let b = ci_of(4);
    assert_eq!(a.mean.to_bits(), b.mean.to_bits());
    assert_eq!(a.half_width.to_bits(), b.half_width.to_bits());
}

#[test]
fn mtrace1_parallel_aggregate_is_bit_identical_to_serial() {
    let queue = MTrace1::new(0.7, vec![1.0; 20_000]).expect("valid");
    let scenario = |rep: burstcap::experiment::Replication| queue.run(rep.seed);
    let serial = Replications::new(5)
        .expect("valid plan")
        .master_seed(99)
        .run(scenario)
        .expect("serial fold");
    let parallel = Replications::new(5)
        .expect("valid plan")
        .master_seed(99)
        .workers(3)
        .run(scenario)
        .expect("parallel fan");
    assert_eq!(
        fold_bits(serial.iter().map(|r| r.response_time_mean())),
        fold_bits(parallel.iter().map(|r| r.response_time_mean())),
    );
    assert_eq!(
        fold_bits(serial.iter().map(|r| r.utilization())),
        fold_bits(parallel.iter().map(|r| r.utilization())),
    );
}

#[test]
fn testbed_batch_matches_parallel_fan() {
    // Testbed::replications (serial batch) and the harness fanning
    // Testbed::replication across workers are the same list.
    let tb =
        Testbed::new(TestbedConfig::new(Mix::Shopping, 8).duration(120.0).seed(5)).expect("valid");
    let batch = tb.replications(4).expect("serial batch");
    let fanned = Replications::new(4)
        .expect("valid plan")
        .workers(2)
        .run(|rep| tb.replication(rep.index))
        .expect("parallel fan");
    assert_eq!(batch.len(), fanned.len());
    for (s, p) in batch.iter().zip(&fanned) {
        assert_eq!(s, p, "batch and fanned replications must match exactly");
    }
}
