//! Offline shim for `proptest`.
//!
//! Implements exactly the subset of the proptest API the workspace's
//! property suites use: the [`proptest!`] macro over `pat in strategy`
//! arguments, `#![proptest_config(ProptestConfig::with_cases(n))]`,
//! [`prop_assert!`], [`prop_assume!`], [`any`], numeric-range strategies,
//! tuple strategies, and `prop::collection::vec`.
//!
//! Differences from real proptest, by design:
//!
//! * **No shrinking.** A failing case panics with the generated inputs'
//!   case number; cases are fully deterministic (seeded from the test's
//!   module path and name), so a failure reproduces identically on rerun.
//! * **Deterministic by construction.** There is no environment-variable
//!   RNG override; two consecutive `cargo test` runs execute byte-identical
//!   case sequences, which the workspace requires of its tier-1 suite.

#![forbid(unsafe_code)]
// Vendored shim: outside the workspace numerical contract; silence the
// advisory truncation lint the real crates keep visible.
#![allow(clippy::cast_possible_truncation)]

use std::ops::{Range, RangeInclusive};

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Runner configuration; only `cases` is honoured.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of accepted (non-rejected) cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Configuration running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Why a single generated case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// `prop_assume!` filtered the inputs out; the case is not counted.
    Reject,
    /// `prop_assert!` failed with this message.
    Fail(String),
}

/// Deterministic per-test RNG: FNV-1a over the fully qualified test name,
/// fed through the `SmallRng` seeding path.
pub fn deterministic_rng(module_path: &str, test_name: &str) -> SmallRng {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in module_path.bytes().chain([b':']).chain(test_name.bytes()) {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    SmallRng::seed_from_u64(h)
}

/// A source of generated values.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draw one value.
    fn sample(&self, rng: &mut SmallRng) -> Self::Value;
}

impl Strategy for Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut SmallRng) -> f64 {
        self.start + (self.end - self.start) * rng.random::<f64>()
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut SmallRng) -> f64 {
        self.start() + (self.end() - self.start()) * rng.random::<f64>()
    }
}

macro_rules! impl_int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut SmallRng) -> $t {
                rng.random_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut SmallRng) -> $t {
                rng.random_range(self.clone())
            }
        }
    )*};
}

impl_int_strategy!(u64, u32, usize, i64, i32);

impl<A: Strategy, B: Strategy> Strategy for (A, B) {
    type Value = (A::Value, B::Value);
    fn sample(&self, rng: &mut SmallRng) -> Self::Value {
        (self.0.sample(rng), self.1.sample(rng))
    }
}

impl<A: Strategy, B: Strategy, C: Strategy> Strategy for (A, B, C) {
    type Value = (A::Value, B::Value, C::Value);
    fn sample(&self, rng: &mut SmallRng) -> Self::Value {
        (self.0.sample(rng), self.1.sample(rng), self.2.sample(rng))
    }
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Draw an arbitrary value of the type.
    fn arbitrary(rng: &mut SmallRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut SmallRng) -> $t {
                rng.random::<u64>() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u64, u32, u16, u8, i64, i32, usize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut SmallRng) -> bool {
        rng.random::<bool>()
    }
}

/// Strategy over the full domain of `T` (see [`any`]).
pub struct Any<T>(std::marker::PhantomData<T>);

/// `any::<T>()` — the full-domain strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut SmallRng) -> T {
        T::arbitrary(rng)
    }
}

pub mod collection {
    //! Collection strategies.

    use super::{SmallRng, Strategy};
    use std::ops::Range;

    /// Strategy producing `Vec`s of an element strategy (see [`vec()`]).
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// A `Vec` strategy with a length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        assert!(size.start < size.end, "empty size range");
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut SmallRng) -> Vec<S::Value> {
            let len = self.size.clone().sample(rng);
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

pub mod prelude {
    //! Everything a property-test file needs, mirroring
    //! `proptest::prelude::*`.

    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assume, proptest, Arbitrary, ProptestConfig,
        Strategy, TestCaseError,
    };

    /// Alias so `prop::collection::vec(...)` resolves as in real proptest.
    pub use crate as prop;
}

/// Assert inside a property; failure reports the case and stops the test.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        // `match` rather than `if !cond` keeps clippy's
        // neg_cmp_op_on_partial_ord out of every float-comparison call site.
        match $cond {
            true => {}
            false => {
                return ::std::result::Result::Err($crate::TestCaseError::Fail(format!(
                    "assertion failed: {}",
                    stringify!($cond)
                )))
            }
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        match $cond {
            true => {}
            false => {
                return ::std::result::Result::Err($crate::TestCaseError::Fail(format!(
                    $($fmt)+
                )))
            }
        }
    };
}

/// Assert equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, "assertion failed: `{:?}` == `{:?}`", l, r);
    }};
}

/// Reject the current case (not counted towards the case budget).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        match $cond {
            true => {}
            false => return ::std::result::Result::Err($crate::TestCaseError::Reject),
        }
    };
}

/// The property-test entry point; see the crate docs for supported syntax.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident( $($pat:pat in $strat:expr),+ $(,)? ) $body:block
        )*
    ) => {
        $(
            $crate::proptest!(@one ($cfg) $(#[$meta])* fn $name ( $($pat in $strat),+ ) $body);
        )*
    };
    (
        $(
            $(#[$meta:meta])*
            fn $name:ident( $($pat:pat in $strat:expr),+ $(,)? ) $body:block
        )*
    ) => {
        $(
            $crate::proptest!(@one ($crate::ProptestConfig::default())
                $(#[$meta])* fn $name ( $($pat in $strat),+ ) $body);
        )*
    };
    (@one ($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident( $($pat:pat in $strat:expr),+ $(,)? ) $body:block
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut rng = $crate::deterministic_rng(module_path!(), stringify!($name));
            let mut accepted: u32 = 0;
            let mut attempts: u32 = 0;
            let max_attempts = config.cases.saturating_mul(20).max(100);
            while accepted < config.cases {
                attempts += 1;
                assert!(
                    attempts <= max_attempts,
                    "proptest shim: too many rejected cases ({} attempts for {} target cases)",
                    attempts,
                    config.cases
                );
                let outcome = (|| -> ::std::result::Result<(), $crate::TestCaseError> {
                    $(let $pat = $crate::Strategy::sample(&($strat), &mut rng);)+
                    $body;
                    ::std::result::Result::Ok(())
                })();
                match outcome {
                    ::std::result::Result::Ok(()) => accepted += 1,
                    ::std::result::Result::Err($crate::TestCaseError::Reject) => {}
                    ::std::result::Result::Err($crate::TestCaseError::Fail(msg)) => {
                        panic!(
                            "property '{}' failed on deterministic case {}: {}",
                            stringify!($name),
                            attempts,
                            msg
                        );
                    }
                }
            }
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_in_bounds(x in 1.5f64..9.5, n in 3usize..40) {
            prop_assert!((1.5..9.5).contains(&x));
            prop_assert!((3..40).contains(&n));
        }

        #[test]
        fn vec_strategy_sizes(mut v in prop::collection::vec(0.0f64..1.0, 2..17)) {
            prop_assert!(v.len() >= 2 && v.len() < 17);
            v.push(0.5);
            prop_assert!(v.iter().all(|&x| (0.0..=1.0).contains(&x)));
        }

        #[test]
        fn tuples_and_any(pair in (0.0f64..1.0, 1u64..9), seed in any::<u64>()) {
            prop_assert!(pair.0 < 1.0 && pair.1 >= 1 && pair.1 < 9);
            // Exercise the format-args branch of prop_assert.
            prop_assert!(seed == seed, "seed {seed} must equal itself");
        }

        #[test]
        fn assume_rejects_without_failing(x in 0.0f64..1.0) {
            prop_assume!(x > 0.25);
            prop_assert!(x > 0.25);
        }
    }

    proptest! {
        #[test]
        fn default_config_runs(x in 0usize..5) {
            prop_assert!(x < 5);
        }
    }

    #[test]
    fn determinism_across_runners() {
        let mut a = crate::deterministic_rng("m", "t");
        let mut b = crate::deterministic_rng("m", "t");
        let s = 0.0f64..1.0;
        for _ in 0..64 {
            assert_eq!(Strategy::sample(&s, &mut a).to_bits(), {
                Strategy::sample(&s, &mut b).to_bits()
            });
        }
    }

    #[test]
    #[should_panic(expected = "property 'always_fails' failed")]
    fn failing_property_panics() {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(4))]
            fn always_fails(x in 0.0f64..1.0) {
                prop_assert!(x > 2.0);
            }
        }
        always_fails();
    }
}
