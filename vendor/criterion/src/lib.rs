//! Offline shim for `criterion`.
//!
//! Provides the bench-definition API the workspace's `benches/` targets use
//! (`criterion_group!`/`criterion_main!`, [`Criterion::bench_function`],
//! benchmark groups, [`BenchmarkId`], `Bencher::iter`) with a simple
//! wall-clock measurement loop instead of criterion's statistical engine.
//!
//! Reported numbers are medians over `sample_size` samples of a
//! auto-calibrated inner batch, printed one line per benchmark:
//!
//! ```text
//! bench group/id ... median 12.345 µs/iter (10 samples)
//! ```
//!
//! Set `BURSTCAP_BENCH_FAST=1` to clamp sampling to one short sample per
//! benchmark — used by CI to smoke-run every bench target cheaply.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level bench driver, one per bench target.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

fn fast_mode() -> bool {
    std::env::var_os("BURSTCAP_BENCH_FAST").is_some_and(|v| v != "0")
}

impl Criterion {
    /// Set the number of timing samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Time a closure under `name`.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(name, self.sample_size, &mut f);
        self
    }

    /// Open a named group of related benchmarks; it inherits this driver's
    /// configured sample size (as in real criterion).
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        let sample_size = self.sample_size;
        BenchmarkGroup {
            _parent: self,
            name: name.to_string(),
            sample_size,
        }
    }

    /// Run configuration hook (accepted for API compatibility).
    pub fn configure_from_args(self) -> Self {
        self
    }
}

/// A group of related benchmarks sharing a name prefix and sample size.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Set the number of timing samples for benchmarks in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Time a closure under `group/name`.
    pub fn bench_function<F>(&mut self, name: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(&format!("{}/{}", self.name, name), self.sample_size, &mut f);
        self
    }

    /// Time a closure parameterized by `input` under `group/id`.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.label);
        let n = self.sample_size;
        run_bench(&label, n, &mut |b: &mut Bencher| f(b, input));
        self
    }

    /// Finish the group (no-op; printing is immediate).
    pub fn finish(self) {}
}

/// Identifier combining a function name and a parameter rendering.
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// `function_name/parameter` identifier.
    pub fn new(function_name: impl Display, parameter: impl Display) -> Self {
        BenchmarkId {
            label: format!("{function_name}/{parameter}"),
        }
    }

    /// Identifier from a parameter alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

/// Passed to the bench closure; call [`Bencher::iter`] with the hot code.
pub struct Bencher {
    batch: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Time `batch` iterations of `f`, recording total elapsed time.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.batch {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_bench<F: FnMut(&mut Bencher)>(label: &str, sample_size: usize, f: &mut F) {
    let fast = fast_mode();
    // Calibrate the batch so one sample takes ~5 ms (1 iteration in fast mode).
    let mut batch: u64 = 1;
    if !fast {
        loop {
            let mut b = Bencher {
                batch,
                elapsed: Duration::ZERO,
            };
            f(&mut b);
            if b.elapsed >= Duration::from_millis(5) || batch >= 1 << 20 {
                break;
            }
            batch *= 2;
        }
    }
    let samples = if fast { 1 } else { sample_size };
    let mut per_iter: Vec<f64> = (0..samples)
        .map(|_| {
            let mut b = Bencher {
                batch,
                elapsed: Duration::ZERO,
            };
            f(&mut b);
            b.elapsed.as_secs_f64() / batch as f64
        })
        .collect();
    per_iter.sort_by(|a, b| a.partial_cmp(b).expect("bench times are finite"));
    let median = per_iter[per_iter.len() / 2];
    let (value, unit) = humanize(median);
    println!("bench {label} ... median {value:.3} {unit}/iter ({samples} samples, batch {batch})");
}

fn humanize(seconds: f64) -> (f64, &'static str) {
    if seconds >= 1.0 {
        (seconds, "s")
    } else if seconds >= 1e-3 {
        (seconds * 1e3, "ms")
    } else if seconds >= 1e-6 {
        (seconds * 1e6, "µs")
    } else {
        (seconds * 1e9, "ns")
    }
}

/// Define a bench group: either `criterion_group!(name, target, ...)` or the
/// `name = ...; config = ...; targets = ...` form.
#[macro_export]
macro_rules! criterion_group {
    (
        name = $name:ident;
        config = $config:expr;
        targets = $($target:path),+ $(,)?
    ) => {
        fn $name() {
            $(
                let mut criterion: $crate::Criterion = $config;
                $target(&mut criterion);
            )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Define the bench binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick(c: &mut Criterion) {
        c.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
        let mut group = c.benchmark_group("grp");
        group.sample_size(2);
        group.bench_with_input(BenchmarkId::new("square", 4), &4u64, |b, &x| {
            b.iter(|| black_box(x * x))
        });
        group.bench_function("id", |b| b.iter(|| black_box(0)));
        group.finish();
    }

    #[test]
    fn harness_runs_groups_and_ids() {
        std::env::set_var("BURSTCAP_BENCH_FAST", "1");
        criterion_group! {
            name = benches;
            config = Criterion::default().sample_size(2);
            targets = quick
        }
        benches();
        assert_eq!(BenchmarkId::new("f", 3).label, "f/3");
        assert_eq!(BenchmarkId::from_parameter("p").label, "p");
    }
}
