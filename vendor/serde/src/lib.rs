//! Offline shim for `serde`.
//!
//! Nothing in the workspace serializes at runtime today — the paper crates
//! derive `Serialize`/`Deserialize` so result types are ready for future
//! JSON/CSV export. With no registry access, this shim keeps those derives
//! compiling by providing the two names as empty marker traits plus the
//! matching derive macros from the vendored [`serde_derive`].
//!
//! Swapping in real `serde` later is a one-line manifest change; no source
//! edits will be needed because the trait/derive names match exactly.

#![forbid(unsafe_code)]

/// Marker stand-in for `serde::Serialize`.
pub trait Serialize {}

/// Marker stand-in for `serde::Deserialize`.
pub trait Deserialize {}

pub use serde_derive::{Deserialize, Serialize};

// Common std impls so container/newtype usage keeps compiling if bounds
// appear later.
macro_rules! impl_markers {
    ($($t:ty),*) => {$(
        impl Serialize for $t {}
        impl Deserialize for $t {}
    )*};
}

impl_markers!(
    bool, char, f32, f64, i8, i16, i32, i64, i128, isize, u8, u16, u32, u64, u128, usize, String
);

impl<T: Serialize> Serialize for Vec<T> {}
impl<T: Deserialize> Deserialize for Vec<T> {}
impl<T: Serialize> Serialize for Option<T> {}
impl<T: Deserialize> Deserialize for Option<T> {}
impl<T: Serialize, const N: usize> Serialize for [T; N] {}
impl<T: Deserialize, const N: usize> Deserialize for [T; N] {}
impl<A: Serialize, B: Serialize> Serialize for (A, B) {}
impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {}
impl Serialize for &str {}

// NOTE: the derive macros expand to `impl ::serde::Trait for ...`, which
// cannot resolve from inside this crate itself (same limitation as real
// serde). Derive expansion is exercised by `tests/workspace_smoke.rs` in the
// umbrella crate and by every paper crate that derives these traits.
