//! Offline shim for `serde_derive`.
//!
//! The workspace's vendored `serde` exposes `Serialize`/`Deserialize` as
//! marker traits with no methods (nothing in the tree actually serializes;
//! the derives on the paper crates exist so downstream tooling can opt in
//! later). These derive macros therefore only need to emit an empty trait
//! impl with the right generics — which a small hand-rolled token scan can
//! produce without `syn`/`quote` (unavailable offline).

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// The target of a derive: its name and raw generic parameter tokens.
struct Target {
    name: String,
    /// Generic parameter list *with* bounds, e.g. `E: Clone, const N: usize`.
    params: String,
    /// Generic argument list without bounds, e.g. `E, N`.
    args: String,
}

/// Scan the item's tokens for `struct`/`enum`, its name, and generics.
fn parse_target(input: TokenStream) -> Target {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    // Skip attributes, visibility, and doc comments until the item keyword.
    while i < tokens.len() {
        if let TokenTree::Ident(id) = &tokens[i] {
            let s = id.to_string();
            if s == "struct" || s == "enum" || s == "union" {
                break;
            }
        }
        i += 1;
    }
    let name = match tokens.get(i + 1) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive shim: expected item name, found {other:?}"),
    };

    // Collect generics if present: tokens between the matching `<` ... `>`.
    let mut params = String::new();
    let mut args = String::new();
    if let Some(TokenTree::Punct(p)) = tokens.get(i + 2) {
        if p.as_char() == '<' {
            let mut depth = 1usize;
            let mut j = i + 3;
            let mut generic_tokens: Vec<TokenTree> = Vec::new();
            while j < tokens.len() && depth > 0 {
                if let TokenTree::Punct(p) = &tokens[j] {
                    match p.as_char() {
                        '<' => depth += 1,
                        '>' => {
                            depth -= 1;
                            if depth == 0 {
                                break;
                            }
                        }
                        _ => {}
                    }
                }
                generic_tokens.push(tokens[j].clone());
                j += 1;
            }
            params = generic_tokens
                .iter()
                .map(|t| t.to_string())
                .collect::<Vec<_>>()
                .join(" ");
            args = generic_args(&generic_tokens);
        }
    }
    Target { name, params, args }
}

/// Reduce a generic *parameter* list to its *argument* list: keep only the
/// introduced identifiers (lifetimes, type names, const names), dropping
/// bounds and defaults.
fn generic_args(tokens: &[TokenTree]) -> String {
    let mut out: Vec<String> = Vec::new();
    let mut depth = 0usize; // inside bound brackets we skip everything
    let mut skip = false; // true after `:` or `=` until the next top-level `,`
    let mut lifetime = false;
    let mut expect_const_name = false;
    for t in tokens {
        match t {
            TokenTree::Punct(p) => match p.as_char() {
                '<' | '(' | '[' => depth += 1,
                '>' | ')' | ']' => depth = depth.saturating_sub(1),
                ',' if depth == 0 => skip = false,
                ':' | '=' if depth == 0 => skip = true,
                '\'' if depth == 0 && !skip => lifetime = true,
                _ => {}
            },
            TokenTree::Ident(id) if depth == 0 && !skip => {
                let s = id.to_string();
                if s == "const" {
                    expect_const_name = true;
                } else if lifetime {
                    out.push(format!("'{s}"));
                    lifetime = false;
                    skip = true;
                } else {
                    out.push(s);
                    if expect_const_name {
                        expect_const_name = false;
                    }
                    skip = true;
                }
            }
            TokenTree::Group(g) if depth == 0 && g.delimiter() == Delimiter::None => {}
            _ => {}
        }
    }
    out.join(", ")
}

fn empty_impl(trait_path: &str, input: TokenStream) -> TokenStream {
    let t = parse_target(input);
    let (params, args) = if t.params.is_empty() {
        (String::new(), String::new())
    } else {
        (format!("<{}>", t.params), format!("<{}>", t.args))
    };
    format!(
        "impl{params} {trait_path} for {name}{args} {{}}",
        name = t.name
    )
    .parse()
    .expect("serde_derive shim: generated impl must parse")
}

/// Derive the vendored marker trait `serde::Serialize`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    empty_impl("::serde::Serialize", input)
}

/// Derive the vendored marker trait `serde::Deserialize`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    empty_impl("::serde::Deserialize", input)
}
