//! Offline shim for the `rand` crate (0.9-style API surface).
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors a minimal, deterministic re-implementation of exactly
//! the API the `burstcap` crates use: [`rngs::SmallRng`], [`SeedableRng`],
//! [`Rng::random`], [`Rng::random_range`], and [`seq::SliceRandom`].
//!
//! The generator is xoshiro256++ seeded through SplitMix64 — the same
//! construction real `rand` uses for `SmallRng` on 64-bit targets — so
//! streams are high-quality and fully reproducible from a `u64` seed.

#![forbid(unsafe_code)]
// Vendored shim: outside the workspace numerical contract; silence the
// advisory truncation lint the real crates keep visible.
#![allow(clippy::cast_possible_truncation)]

use std::ops::{Range, RangeInclusive};

/// Low-level entropy source: everything is derived from `next_u64`.
pub trait RngCore {
    /// Produce the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Produce the next 32 random bits (upper half of [`RngCore::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<T: RngCore + ?Sized> RngCore for &mut T {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// User-facing random-value interface, mirroring `rand 0.9`.
pub trait Rng: RngCore {
    /// Sample a value of `T` from its standard distribution.
    fn random<T>(&mut self) -> T
    where
        StandardUniform: Distribution<T>,
    {
        StandardUniform.sample(self)
    }

    /// Sample uniformly from a range.
    fn random_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Construction of a generator from seed material.
pub trait SeedableRng: Sized {
    /// Build a generator whose stream is fully determined by `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// A distribution over values of `T`.
pub trait Distribution<T> {
    /// Draw one value.
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> T;
}

/// The standard distribution: uniform over a type's natural domain
/// (`[0, 1)` for floats, the full range for integers).
pub struct StandardUniform;

impl Distribution<f64> for StandardUniform {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        // 53 uniform bits in [0, 1), the standard conversion.
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Distribution<f32> for StandardUniform {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Distribution<u64> for StandardUniform {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Distribution<u32> for StandardUniform {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u32 {
        rng.next_u32()
    }
}

impl Distribution<usize> for StandardUniform {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        rng.next_u64() as usize
    }
}

impl Distribution<bool> for StandardUniform {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges that can be sampled uniformly.
pub trait SampleRange<T> {
    /// Draw one value from the range.
    fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty f64 range");
        let u: f64 = StandardUniform.sample(rng);
        self.start + (self.end - self.start) * u
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "empty f64 range");
        // 53-bit grid over the closed interval.
        let u = (rng.next_u64() >> 11) as f64 * (1.0 / ((1u64 << 53) - 1) as f64);
        lo + (hi - lo) * u
    }
}

/// Unbiased rejection sampling of `0..span` (`span == 0` means the full
/// 64-bit domain). All callers map the result back with wrapping adds, so
/// boundary ranges (`..=MAX`, signed ranges wider than the signed max)
/// stay overflow-free.
fn sample_span<R: Rng + ?Sized>(rng: &mut R, span: u64) -> u64 {
    if span == 0 {
        return rng.next_u64();
    }
    let zone = u64::MAX - u64::MAX.wrapping_rem(span);
    loop {
        let v = rng.next_u64();
        if v < zone {
            return v % span;
        }
    }
}

macro_rules! impl_int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty integer range");
                // Two's-complement distance: exact for signed and unsigned.
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start.wrapping_add(sample_span(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "empty integer range");
                // span == 0 after the +1 wrap means the full domain.
                let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                lo.wrapping_add(sample_span(rng, span) as $t)
            }
        }
    )*};
}

impl_int_sample_range!(u64, u32, usize, i64, i32);

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// xoshiro256++ — small, fast, and statistically strong; the same
    /// algorithm real `rand` backs `SmallRng` with on 64-bit platforms.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    #[inline]
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            SmallRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

pub mod seq {
    //! Sequence-related random operations.

    use super::Rng;

    /// Unbiased uniform draw from `0..bound` usable on unsized `R`.
    fn uniform_index<R: Rng + ?Sized>(rng: &mut R, bound: usize) -> usize {
        debug_assert!(bound > 0);
        super::sample_span(rng, bound as u64) as usize
    }

    /// Random operations on slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

        /// Uniformly pick a reference to one element (`None` when empty).
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = uniform_index(rng, i + 1);
                self.swap(i, j);
            }
        }

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[uniform_index(rng, self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        let mut c = SmallRng::seed_from_u64(8);
        let va: Vec<f64> = (0..16).map(|_| a.random::<f64>()).collect();
        let vb: Vec<f64> = (0..16).map(|_| b.random::<f64>()).collect();
        let vc: Vec<f64> = (0..16).map(|_| c.random::<f64>()).collect();
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn unit_floats_in_range() {
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x: f64 = rng.random();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn range_sampling_respects_bounds() {
        let mut rng = SmallRng::seed_from_u64(2);
        for _ in 0..10_000 {
            let x = rng.random_range(3usize..17);
            assert!((3..17).contains(&x));
            let y = rng.random_range(-2.5f64..=4.5);
            assert!((-2.5..=4.5).contains(&y));
        }
    }

    #[test]
    fn shuffle_preserves_multiset_and_choose_hits_members() {
        let mut rng = SmallRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert!(v.choose(&mut rng).is_some());
        let empty: Vec<u32> = vec![];
        assert!(empty.choose(&mut rng).is_none());
    }

    #[test]
    fn boundary_ranges_do_not_overflow() {
        let mut rng = SmallRng::seed_from_u64(6);
        for _ in 0..1_000 {
            // Inclusive upper boundary at the domain max.
            let a = rng.random_range(1u64..=u64::MAX);
            assert!(a >= 1);
            // Full signed domain and signed span wider than i64::MAX.
            let _ = rng.random_range(i64::MIN..=i64::MAX);
            let b = rng.random_range(i64::MIN..1);
            assert!(b < 1);
            // Degenerate single-value range.
            assert_eq!(rng.random_range(7u32..=7), 7);
        }
    }

    #[test]
    fn mean_of_unit_uniform_near_half() {
        let mut rng = SmallRng::seed_from_u64(4);
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| rng.random::<f64>()).sum();
        assert!((sum / n as f64 - 0.5).abs() < 0.01);
    }
}
