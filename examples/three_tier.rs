//! Three-tier quickstart: web + app + db through the full N-station
//! pipeline.
//!
//! Run with `cargo run --example three_tier`. Set `BURSTCAP_TRACE_OUT` to a
//! path to also write the exact solve's deterministic trace log (one JSON
//! event per line block); CI archives that file as a build artifact.
//!
//! The three-tier TPC-W testbed emulates a dedicated web (HTTP) server in
//! front of the application server and the database. Its monitoring output
//! feeds the same methodology as the two-tier model — characterize each
//! tier, fit a MAP(2) per tier — but the what-if model is now a closed
//! tandem of **three** MAP stations, solved exactly. The prediction is then
//! cross-checked against an independent discrete-event simulation of the
//! same three-station network.

use burstcap::measurements::TierMeasurements;
use burstcap::planner::{CapacityPlanner, MvaBaseline, PlannerOptions};
use burstcap_obs::Recorder;
use burstcap_qn::mapqn::MapNetwork;
use burstcap_sim::queues::ClosedMapNetwork;
use burstcap_tpcw::mix::Mix;
use burstcap_tpcw::monitor::TierId;
use burstcap_tpcw::testbed::{Testbed, TestbedConfig, Topology};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // --- 1. Run the three-tier testbed and collect monitoring data -------
    let config = TestbedConfig::new(Mix::Shopping, 60)
        .topology(Topology::three_tier_default())
        .duration(900.0)
        .seed(42);
    let run = Testbed::new(config)?.run()?;
    println!(
        "testbed: X = {:.1} tx/s, U_web = {:.2}, U_app = {:.2}, U_db = {:.2}",
        run.throughput,
        run.mean_utilization(TierId::Web),
        run.mean_utilization(TierId::Front),
        run.mean_utilization(TierId::Db)
    );

    // --- 2. Characterize every tier and fit one MAP(2) per tier ----------
    let tier = |id| -> Result<TierMeasurements, Box<dyn std::error::Error>> {
        let m = run.monitoring(id)?;
        Ok(TierMeasurements::new(
            m.resolution,
            m.utilization,
            m.completions,
        )?)
    };
    let (web, app, db) = (tier(TierId::Web)?, tier(TierId::Front)?, tier(TierId::Db)?);
    let planner =
        CapacityPlanner::from_tier_measurements(&[&web, &app, &db], PlannerOptions::default())?;
    for (name, c) in ["web", "app", "db "]
        .iter()
        .zip(planner.tier_characterizations())
    {
        println!(
            "{name}: mean = {:.2} ms, I = {:.1}, p95 = {:.2} ms",
            c.mean_service_time * 1e3,
            c.index_of_dispersion,
            c.p95_service_time * 1e3
        );
    }

    // --- 3. Predict a what-if sweep against the three-tier MVA baseline --
    let mva = MvaBaseline::from_demand_vector(
        planner
            .tier_characterizations()
            .iter()
            .map(|c| c.mean_service_time)
            .collect(),
    )?;
    println!("\n{:>6} {:>14} {:>14}", "EBs", "burst-aware", "MVA");
    for ebs in [20, 40, 60] {
        let p = planner.predict(ebs, 0.5)?;
        let b = mva.predict(ebs, 0.5)?;
        println!("{ebs:>6} {:>14.1} {:>14.1}", p.throughput, b.throughput);
    }

    // --- 4. Cross-validate the model against an independent simulation ---
    let stations: Vec<_> = planner.tier_fits().iter().map(|f| f.map()).collect();
    let pop = 40;
    let recorder = Recorder::new();
    let (exact, _pi) = MapNetwork::tandem(pop, 0.5, stations.clone())?.solve_auto_traced(
        10_000,
        None,
        &recorder.trace(),
    )?;
    if let Some(path) = std::env::var_os("BURSTCAP_TRACE_OUT") {
        std::fs::write(&path, recorder.deterministic_json())?;
        println!(
            "trace: wrote {} events to {}",
            recorder.event_count(),
            path.to_string_lossy()
        );
    }
    let sim = ClosedMapNetwork::tandem(pop, 0.5, stations)?.run(2000.0, 200.0, 7)?;
    println!(
        "\ncross-check at {pop} EBs: exact X = {:.1}, simulated X = {:.1} \
         (gap {:.1}%)",
        exact.throughput,
        sim.throughput,
        100.0 * (exact.throughput - sim.throughput).abs() / exact.throughput
    );
    println!(
        "per-station utilization (exact): web {:.2}, app {:.2}, db {:.2}",
        exact.utilization[0], exact.utilization[1], exact.utilization[2]
    );
    Ok(())
}
