//! Burstiness profiles and their queueing cost — the paper's Section 2
//! motivation, interactively.
//!
//! Run with `cargo run --release --example burst_profiles`.
//!
//! Four traces share the same hyperexponential distribution (mean 1,
//! SCV 3); only the *order* of the samples differs. The index of dispersion
//! tells them apart, and the M/Trace/1 queue shows the response-time cost.

use burstcap_map::trace::{balanced_p_small, hyperexp_trace, impose_burstiness, BurstProfile};
use burstcap_sim::queues::MTrace1;
use burstcap_stats::dispersion::index_of_dispersion_counting;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let base = hyperexp_trace(20_000, 1.0, 3.0, 42)?;
    let p_small = balanced_p_small(3.0)?;
    let profiles = [
        ("(a) i.i.d.", BurstProfile::Iid),
        (
            "(b) mild bursts",
            BurstProfile::Modulated {
                p_small,
                gamma: 0.95,
            },
        ),
        (
            "(c) strong bursts",
            BurstProfile::Modulated {
                p_small,
                gamma: 0.995,
            },
        ),
        ("(d) one giant burst", BurstProfile::Sorted),
    ];

    println!(
        "{:<20} {:>8} {:>12} {:>12}",
        "profile", "I", "E[R] rho=.5", "p95 rho=.5"
    );
    for (name, profile) in profiles {
        let trace = impose_burstiness(&base, profile, 7)?;
        let i = index_of_dispersion_counting(&trace, 30.0, 0.2)?.index_of_dispersion();
        let result = MTrace1::new(0.5, trace)?.run(1)?;
        println!(
            "{name:<20} {i:>8.1} {:>12.2} {:>12.2}",
            result.response_time_mean(),
            result.response_time_p95()
        );
    }
    println!("\nSame distribution, wildly different queueing: burstiness matters.");
    Ok(())
}
