//! Multi-replication experiments in a dozen lines.
//!
//! Run with `cargo run --release --example replications`.
//!
//! Point estimates from one simulation run can be badly off under bursty
//! service (single-run estimators converge slowly when the service process
//! mixes slowly). The experiment harness replaces them with Student-t
//! confidence intervals over R independent replications, fanned across
//! worker threads — with aggregates guaranteed bit-identical to a serial
//! fold of the same plan.

use burstcap::experiment::Experiment;
use burstcap_map::fit::Map2Fitter;
use burstcap_map::Map2;
use burstcap_sim::queues::ClosedMapNetwork;
use burstcap_stats::ci::RelativePrecision;
use burstcap_tpcw::mix::Mix;
use burstcap_tpcw::testbed::{Testbed, TestbedConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // --- 1. A bursty closed network, replicated with a CI ------------------
    let front = Map2::poisson(1.0 / 0.01)?;
    let db = Map2Fitter::new(0.006, 40.0, 0.02).fit()?.map();
    let net = ClosedMapNetwork::new(25, 0.4, front, db)?;
    let result = Experiment::new(6)?
        .master_seed(2008)
        .workers(4)
        .run(|rep| net.run(1500.0, 150.0, rep.seed))?;
    let x = result.metric(|r| r.throughput)?;
    println!(
        "closed MAP network: X = {:.2} ± {:.2} req/s ({:.0}% CI, {} replications)",
        x.mean,
        x.half_width,
        100.0 * x.level,
        x.count
    );

    // --- 2. Sequential stopping: replicate until ±5% ------------------------
    let rule = RelativePrecision::new(0.05)?;
    let tight = Experiment::new(4)?.master_seed(2008).workers(4).run_until(
        rule,
        32,
        |r: &burstcap_sim::queues::ClosedRunResult| r.throughput,
        |rep| net.run(1500.0, 150.0, rep.seed),
    )?;
    let x = tight.metric(|r| r.throughput)?;
    println!(
        "after the ±5% stopping rule: X = {:.2} ± {:.2} ({} replications)",
        x.mean,
        x.half_width,
        tight.replications()
    );

    // --- 3. The TPC-W testbed batch entry point -----------------------------
    let testbed = Testbed::new(
        TestbedConfig::new(Mix::Browsing, 50)
            .duration(300.0)
            .seed(1),
    )?;
    let runs = testbed.replications(4)?;
    let result = Experiment::new(4)?.run(|rep| testbed.replication(rep.index))?;
    assert_eq!(runs, result.into_outputs(), "batch == harness, always");
    let xs: Vec<f64> = runs.iter().map(|r| r.throughput).collect();
    let ci = burstcap_stats::ci::mean_ci(&xs, 0.95)?;
    println!(
        "TPC-W browsing @ 50 EBs: X = {:.1} ± {:.1} tx/s across {} replications",
        ci.mean, ci.half_width, ci.count
    );
    Ok(())
}
