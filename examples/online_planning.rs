//! Continuous capacity planning over a drifting live feed.
//!
//! Run with `cargo run --release --example online_planning`.
//!
//! The scenario the batch pipeline cannot express: a planner watches a
//! TPC-W deployment's monitoring feed window by window. For the first phase
//! the database is healthy; then a heavy contention regime is injected (the
//! paper's burstiness cause — shared-table episodes with a large slowdown).
//! The online planner must
//!
//! 1. fit once from the stable stream and then stay quiet (descriptors
//!    refined but within the drift threshold — no wasted solves),
//! 2. fire its CUSUM regime-change detector right after the shift,
//! 3. drop the now-stale database history, re-learn, and re-fit — with the
//!    CTMC solve warm-started from the previous stationary vector.
//!
//! The example asserts all three, so CI catches regressions in the
//! detect-and-replan loop.

use burstcap_online::detector::CusumOptions;
use burstcap_online::planner::{OnlinePlanner, OnlinePlannerOptions};
use burstcap_online::window::{ReplaySource, WindowSource};
use burstcap_tpcw::contention::ContentionConfig;
use burstcap_tpcw::mix::Mix;
use burstcap_tpcw::testbed::{Testbed, TestbedConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // --- 1. Record the two phases of the drifting workload ---------------
    let ebs = 60;
    let stable = Testbed::new(
        TestbedConfig::new(Mix::Browsing, ebs)
            .duration(2400.0)
            .seed(7)
            .contention(ContentionConfig::disabled()),
    )?
    .run()?;
    let contended = Testbed::new(
        TestbedConfig::new(Mix::Browsing, ebs)
            .duration(2400.0)
            .seed(8)
            .contention(ContentionConfig {
                trigger_probability: 0.2,
                slowdown: 9.0,
                ..ContentionConfig::default()
            }),
    )?
    .run()?;

    let mut feed = ReplaySource::from_run(&stable)?;
    let shift_window = feed.remaining();
    feed.append_run(&contended)?;
    println!(
        "feed: {} windows of {}s ({} stable, contention shift injected at window {})",
        feed.remaining(),
        feed.resolution(),
        shift_window,
        shift_window + 1
    );

    // --- 2. Stream it through the online planner -------------------------
    let mut options = OnlinePlannerOptions::new(ebs, 0.5);
    options.min_windows = 300; // mature descriptors before the first fit
    options.replan_every = 30;
    options.drift_threshold = 0.25;
    options.i_drift_threshold = 5.0; // low-I wander is noise at this load
    options.detector = CusumOptions {
        warmup_windows: 40,
        slack: 0.25,
        threshold: 8.0,
    };
    let mut planner = OnlinePlanner::new(feed.resolution(), 2, options)?;
    let reports = planner.drain(&mut feed)?;

    println!("\ntimeline ({} replanning ticks):", reports.len());
    for r in &reports {
        println!("  {r}");
    }

    // --- 3. The contract the loop must honour ----------------------------
    let first_alarm = reports
        .iter()
        .find(|r| r.regime_change)
        .map(|r| r.window)
        .expect("the injected contention shift must fire the detector");
    let stable_refits = reports
        .iter()
        .filter(|r| r.window <= shift_window && r.refitted)
        .count();
    let post_shift_refits: Vec<usize> = reports
        .iter()
        .filter(|r| r.window > shift_window && r.refitted)
        .map(|r| r.window)
        .collect();
    assert!(
        reports
            .iter()
            .all(|r| r.window > shift_window || !r.regime_change),
        "no regime-change alarm may fire during the stable phase"
    );
    assert!(
        first_alarm > shift_window && first_alarm <= shift_window + 20,
        "detector fired at window {first_alarm}, shift was at {shift_window}"
    );
    assert_eq!(
        stable_refits, 1,
        "stable phase: exactly the initial fit, no drift churn"
    );
    assert!(
        !post_shift_refits.is_empty(),
        "the planner must re-fit after the shift"
    );
    let stats = planner.stats();
    assert!(
        stats.warm_solves >= 1,
        "post-shift re-solves must warm-start from the previous pi"
    );

    let pre_shift = reports
        .iter()
        .rfind(|r| r.window <= shift_window)
        .expect("stable-phase reports exist");
    let final_report = reports.last().expect("reports exist");
    let (pre_db, post_db) = (
        &pre_shift.tiers[1].characterization,
        &final_report.tiers[1].characterization,
    );
    assert!(
        post_db.index_of_dispersion > 5.0 * pre_db.index_of_dispersion.max(1.0),
        "heavy contention must inflate the db index of dispersion ({} -> {})",
        pre_db.index_of_dispersion,
        post_db.index_of_dispersion
    );

    println!(
        "\ndetector fired at window {first_alarm} (shift at {shift_window}); \
         re-fits: 1 stable + {} post-shift (first at window {})",
        post_shift_refits.len(),
        post_shift_refits[0]
    );
    println!(
        "db service process: mean {:.1} ms / I = {:.1}  ->  mean {:.1} ms / I = {:.1}",
        pre_db.mean_service_time * 1e3,
        pre_db.index_of_dispersion,
        post_db.mean_service_time * 1e3,
        post_db.index_of_dispersion
    );
    println!(
        "prediction at {ebs} EBs: {:.1} -> {:.1} tx/s; solves: {} warm / {} cold over {} refits",
        pre_shift.prediction.throughput,
        final_report.prediction.throughput,
        stats.warm_solves,
        stats.cold_solves,
        stats.refits
    );
    println!("\nonline planning contract holds end to end");
    Ok(())
}
