//! Diagnosing a bottleneck switch from utilization time series — the
//! paper's Section 3 symptom analysis.
//!
//! Run with `cargo run --release --example bottleneck_switch`.
//!
//! The browsing mix periodically drives the database above the front server
//! (contended episodes); the shopping mix keeps the front server dominant.
//! The detector quantifies what the paper shows visually in Figure 5.

use burstcap_stats::bottleneck::BottleneckDetector;
use burstcap_tpcw::mix::Mix;
use burstcap_tpcw::testbed::{Testbed, TestbedConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    for mix in [Mix::Browsing, Mix::Shopping, Mix::Ordering] {
        let run = Testbed::new(TestbedConfig::new(mix, 100).duration(600.0).seed(42))?.run()?;
        let report = BottleneckDetector::new().analyze(&run.fs_util, &run.db_util)?;
        println!("--- {mix} mix, 100 EBs ---");
        println!(
            "mean utilization: front {:.1}%, db {:.1}%",
            report.mean_first * 100.0,
            report.mean_second * 100.0
        );
        println!(
            "dominance: front {:.1}% of windows, db {:.1}%, neither {:.1}%",
            report.fraction_first * 100.0,
            report.fraction_second * 100.0,
            report.fraction_neither * 100.0
        );
        println!("bottleneck flips: {}", report.switches);
        println!(
            "verdict: {}\n",
            if report.has_switch(0.2) {
                "bottleneck SWITCHES between tiers"
            } else {
                "single stable bottleneck"
            }
        );
    }
    Ok(())
}
