//! End-to-end capacity planning on the TPC-W testbed — the paper's headline
//! workflow.
//!
//! Run with `cargo run --release --example capacity_planning`.
//!
//! 1. Collect an estimation trace from the simulated testbed (browsing mix,
//!    50 EBs, fine-granularity think time `Z_estim = 7 s`).
//! 2. Build the burstiness-aware planner and the MVA baseline from the same
//!    trace.
//! 3. Predict throughput for a sweep of EB populations at `Z_qn = 0.5 s`
//!    and compare against fresh "measured" testbed runs.

use burstcap::measurements::TierMeasurements;
use burstcap::planner::{CapacityPlanner, MvaBaseline};
use burstcap::report::AccuracyReport;
use burstcap_tpcw::mix::Mix;
use burstcap_tpcw::monitor::TierId;
use burstcap_tpcw::testbed::{Testbed, TestbedConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // --- 1. Estimation run ------------------------------------------------
    let estimation = Testbed::new(
        TestbedConfig::new(Mix::Browsing, 50)
            .think_time(7.0)
            .duration(1800.0)
            .seed(7),
    )?
    .run()?;
    let tier = |id| -> Result<TierMeasurements, Box<dyn std::error::Error>> {
        let m = estimation.monitoring(id)?;
        Ok(TierMeasurements::new(
            m.resolution,
            m.utilization,
            m.completions,
        )?)
    };
    let front = tier(TierId::Front)?;
    let db = tier(TierId::Db)?;

    // --- 2. Planner + baseline --------------------------------------------
    let planner = CapacityPlanner::from_measurements(&front, &db)?;
    let mva = MvaBaseline::from_measurements(&front, &db)?;
    println!(
        "characterized: I_front = {:.0}, I_db = {:.0}",
        planner.front_characterization().index_of_dispersion,
        planner.db_characterization().index_of_dispersion
    );

    // --- 3. Validate against measured sweeps -------------------------------
    let populations = [25usize, 50, 75, 100];
    let mut measured = Vec::new();
    for (k, &ebs) in populations.iter().enumerate() {
        let run = Testbed::new(
            TestbedConfig::new(Mix::Browsing, ebs)
                .duration(600.0)
                .seed(100 + k as u64),
        )?
        .run()?;
        measured.push((ebs, run.throughput));
    }
    let report = AccuracyReport::new(
        "browsing mix: model vs MVA vs measured",
        &measured,
        &planner.predict_sweep(&populations, 0.5)?,
        &mva.predict_sweep(&populations, 0.5)?,
    )?;
    print!("{report}");
    println!(
        "\nmean error: model {:.1}%, MVA {:.1}%",
        report.mean_model_error() * 100.0,
        report.mean_mva_error() * 100.0
    );
    Ok(())
}
