//! Quickstart: from coarse measurements to a throughput prediction.
//!
//! Run with `cargo run --example quickstart`.
//!
//! The methodology needs only per-window utilization samples and completion
//! counts for each tier. Here we synthesize a bursty database trace, then
//! walk the full pipeline: characterize → fit MAP(2) → predict.

use burstcap::measurements::TierMeasurements;
use burstcap::planner::{CapacityPlanner, MvaBaseline};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // --- 1. Monitoring data (what sar + an APM tool give you) ------------
    // Front tier: steady. 5-second windows, 250 completions each, 50% busy.
    let front = TierMeasurements::new(5.0, vec![0.50; 400], vec![250; 400])?;

    // Database tier: bursty. Same mean utilization and rate, but windows
    // alternate in long regimes between "fast" (many completions) and
    // "slow" (few completions per busy second).
    let mut util = Vec::new();
    let mut counts = Vec::new();
    for block in 0..40 {
        for _ in 0..10 {
            util.push(0.45);
            counts.push(if block % 2 == 0 { 400u64 } else { 100 });
        }
    }
    let db = TierMeasurements::new(5.0, util, counts)?;

    // --- 2. Characterize + fit ------------------------------------------
    let planner = CapacityPlanner::from_measurements(&front, &db)?;
    let fc = planner.front_characterization();
    let dc = planner.db_characterization();
    println!(
        "front: mean = {:.2} ms, I = {:.1}",
        fc.mean_service_time * 1e3,
        fc.index_of_dispersion
    );
    println!(
        "db:    mean = {:.2} ms, I = {:.1}, p95 = {:.2} ms",
        dc.mean_service_time * 1e3,
        dc.index_of_dispersion,
        dc.p95_service_time * 1e3
    );

    // --- 3. Predict a what-if sweep, against the MVA baseline ------------
    let mva = MvaBaseline::from_measurements(&front, &db)?;
    println!("\n{:>6} {:>14} {:>14}", "EBs", "burst-aware", "MVA");
    for ebs in [10, 25, 50, 100] {
        let p = planner.predict(ebs, 0.5)?;
        let b = mva.predict(ebs, 0.5)?;
        println!("{ebs:>6} {:>14.1} {:>14.1}", p.throughput, b.throughput);
    }
    println!("\nThe burst-aware prediction saturates earlier: burstiness costs capacity.");
    Ok(())
}
