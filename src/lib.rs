//! Umbrella crate for the `burstcap` workspace.
//!
//! Re-exports every member crate so examples and cross-crate integration
//! tests can use one dependency. The substance lives in:
//!
//! * [`burstcap`] — the capacity-planning methodology (the paper's
//!   contribution);
//! * [`burstcap_stats`] — measurement statistics (index of dispersion,
//!   busy-period analysis, regression, bottleneck detection);
//! * [`burstcap_map`] — Markovian Arrival Processes and the Section 4.1
//!   fitting pipeline;
//! * [`burstcap_sim`] — the discrete-event simulation engine;
//! * [`burstcap_tpcw`] — the TPC-W testbed simulator;
//! * [`burstcap_qn`] — MVA and exact MAP-queueing-network solvers;
//! * [`burstcap_online`] — streaming ingestion and the continuous
//!   (rolling re-fit/re-solve) planner.

#![forbid(unsafe_code)]

pub use burstcap;
pub use burstcap_map;
pub use burstcap_online;
pub use burstcap_qn;
pub use burstcap_sim;
pub use burstcap_stats;
pub use burstcap_tpcw;
